//! The durable-NVM storage seam.
//!
//! [`DurableBackend`] abstracts the *crash-survivable* line store that
//! the secure-memory subsystem persists into. The simulator uses the
//! in-memory [`LineStore`] implementation; tests substitute
//! instrumented mocks to prove that crash images and recovery resume
//! flow exclusively through this interface (no hidden side channels to
//! the durable state).

use crate::addr::LINES_PER_PAGE;
use crate::store::{Line, LineStore, ZERO_LINE};
use crate::timing::Cycle;
use crate::LineAddr;

/// Crash-survivable line-granular storage.
///
/// Semantics every implementation must uphold:
///
/// * a line never stored reads as [`ZERO_LINE`] and loads as `None`;
/// * [`store`](Self::store) makes the content durable immediately
///   (callers model ADR/WPQ ordering above this trait);
/// * [`snapshot`](Self::snapshot) captures exactly the stored lines —
///   it is what a power failure preserves.
///
/// The atomic-group methods ([`begin_atomic`](Self::begin_atomic) /
/// [`commit_atomic`](Self::commit_atomic)) bracket multi-line persist
/// sequences that hardware retires indivisibly — one write-back's
/// data + data-HMAC pair, one epoch drain's staged lines. In-memory
/// backends are trivially atomic and keep the default no-ops; the
/// file backend turns the brackets into log markers so a reopen
/// applies a group all-or-nothing.
pub trait DurableBackend: std::fmt::Debug + Send {
    /// The stored content of `line`, if any.
    fn load(&self, line: LineAddr) -> Option<Line>;

    /// Durably stores `content` at `line`.
    fn store(&mut self, line: LineAddr, content: Line);

    /// Removes `line`, returning its previous content.
    fn erase(&mut self, line: LineAddr) -> Option<Line>;

    /// Number of stored lines.
    fn len(&self) -> usize;

    /// Every stored line address, in unspecified order.
    fn addrs(&self) -> Vec<LineAddr>;

    /// Copies the full durable contents into a [`LineStore`] (the
    /// crash-image representation).
    fn snapshot(&self) -> LineStore;

    /// Replaces the entire durable contents with `image`.
    fn restore(&mut self, image: &LineStore);

    /// Whether nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `line` is stored.
    fn contains(&self, line: LineAddr) -> bool {
        self.load(line).is_some()
    }

    /// The content of `line`, defaulting to [`ZERO_LINE`].
    fn read(&self, line: LineAddr) -> Line {
        self.load(line).unwrap_or(ZERO_LINE)
    }

    /// Opens an atomic persist group: subsequent stores/erases up to
    /// [`commit_atomic`](Self::commit_atomic) must survive a crash
    /// all-or-nothing. Groups do not nest. No-op by default (in-memory
    /// stores are trivially atomic).
    fn begin_atomic(&mut self) {}

    /// Closes the atomic group opened by
    /// [`begin_atomic`](Self::begin_atomic). No-op by default.
    fn commit_atomic(&mut self) {}

    /// Forces any buffered writes down to durable storage. No-op for
    /// backends that persist synchronously.
    fn sync(&mut self) {}

    /// Feeds the simulated clock, for backends with time-based flush
    /// policies. No-op by default.
    fn tick(&mut self, _now: Cycle) {}

    /// Appends one flight-recorder entry (an opaque line of bytes) to
    /// the backend's crash-persistent sidecar, if it keeps one.
    /// In-memory backends have no crash-survivable medium and keep the
    /// default no-op; [`crate::FileBackend`] frames the entry into
    /// `flight.log` when flight recording is enabled.
    fn flight_append(&mut self, _entry: &[u8]) {}

    /// Whether [`flight_append`](Self::flight_append) actually
    /// persists anything — callers use this to skip building entries.
    fn flight_enabled(&self) -> bool {
        false
    }

    /// Host-I/O counters of the durable medium, if it has one: the
    /// commit-log/manifest traffic behind the line-store abstraction.
    /// In-memory backends have no host-I/O side and keep the default
    /// `None`; [`crate::FileBackend`] reports its log counters so write
    /// provenance can attribute durable-store amplification.
    fn io_stats(&self) -> Option<crate::file::FileIoStats> {
        None
    }
}

/// A [`DurableBackend`] view belonging to one shard of a partitioned
/// address space.
///
/// The data region (`line < data_lines`) is partitioned page-granular
/// and round-robin: page `p` belongs to shard `p % shard_count`.
/// Every store to a data line asserts ownership — a cross-shard write
/// is a router bug, and catching it at the durability seam proves the
/// shards really are isolated epoch domains. Metadata lines (at or
/// above `data_lines`) pass through unchecked: each shard keeps a
/// private metadata plane for the pages it owns, so those address
/// ranges never overlap between shard instances by construction.
#[derive(Debug, Default)]
pub struct ShardedBackend {
    inner: LineStore,
    shard_index: u64,
    shard_count: u64,
    data_lines: u64,
}

impl ShardedBackend {
    /// Creates the view for shard `shard_index` of `shard_count` over
    /// a data region of `data_lines` lines.
    ///
    /// # Panics
    ///
    /// Panics when `shard_count` is zero or `shard_index` is out of
    /// range.
    pub fn new(shard_index: u64, shard_count: u64, data_lines: u64) -> Self {
        assert!(shard_count > 0, "a shard topology needs at least 1 shard");
        assert!(
            shard_index < shard_count,
            "shard index {shard_index} out of range for {shard_count} shards"
        );
        Self {
            inner: LineStore::new(),
            shard_index,
            shard_count,
            data_lines,
        }
    }

    /// Whether `line` is inside this shard's slice of the address
    /// space (metadata lines always are — see the type docs).
    pub fn owns(&self, line: LineAddr) -> bool {
        line.0 >= self.data_lines
            || (line.0 / LINES_PER_PAGE) % self.shard_count == self.shard_index
    }
}

impl DurableBackend for ShardedBackend {
    fn load(&self, line: LineAddr) -> Option<Line> {
        self.inner.get(line).copied()
    }

    fn store(&mut self, line: LineAddr, content: Line) {
        assert!(
            self.owns(line),
            "shard {}/{} asked to persist foreign line {line}",
            self.shard_index,
            self.shard_count
        );
        self.inner.write(line, content);
    }

    fn erase(&mut self, line: LineAddr) -> Option<Line> {
        // Deleting durable state is as destructive as overwriting it:
        // the same ownership invariant `store` enforces applies, or a
        // router bug could silently drop another shard's line.
        assert!(
            self.owns(line),
            "shard {}/{} asked to erase foreign line {line}",
            self.shard_index,
            self.shard_count
        );
        self.inner.erase(line)
    }

    fn len(&self) -> usize {
        LineStore::len(&self.inner)
    }

    fn addrs(&self) -> Vec<LineAddr> {
        self.inner.iter().map(|(l, _)| l).collect()
    }

    fn snapshot(&self) -> LineStore {
        self.inner.clone()
    }

    fn restore(&mut self, image: &LineStore) {
        // A service-wide recovery hands every shard the same merged
        // image; each shard takes exactly its slice of the data region
        // (plus the metadata plane, disjoint between shards by
        // construction). Installing foreign data lines here would
        // double-materialize pages into two epoch domains.
        let mut filtered = LineStore::new();
        for (line, content) in image.iter() {
            if self.owns(line) {
                filtered.write(line, *content);
            }
        }
        self.inner = filtered;
    }
}

impl DurableBackend for LineStore {
    fn load(&self, line: LineAddr) -> Option<Line> {
        self.get(line).copied()
    }

    fn store(&mut self, line: LineAddr, content: Line) {
        self.write(line, content);
    }

    fn erase(&mut self, line: LineAddr) -> Option<Line> {
        LineStore::erase(self, line)
    }

    fn len(&self) -> usize {
        LineStore::len(self)
    }

    fn addrs(&self) -> Vec<LineAddr> {
        self.iter().map(|(l, _)| l).collect()
    }

    fn snapshot(&self) -> LineStore {
        self.clone()
    }

    fn restore(&mut self, image: &LineStore) {
        *self = image.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_backend_enforces_page_ownership() {
        // 4 pages of data (256 lines), 2 shards: shard 0 owns pages
        // 0 and 2, shard 1 owns pages 1 and 3.
        let mut s0 = ShardedBackend::new(0, 2, 256);
        assert!(s0.owns(LineAddr(0)));
        assert!(!s0.owns(LineAddr(64)));
        assert!(s0.owns(LineAddr(128)));
        assert!(s0.owns(LineAddr(256)), "metadata lines pass through");
        s0.store(LineAddr(130), [1u8; 64]);
        s0.store(LineAddr(300), [2u8; 64]);
        assert_eq!(s0.load(LineAddr(130)), Some([1u8; 64]));
        assert_eq!(s0.len(), 2);
        let snap = s0.snapshot();
        assert_eq!(s0.erase(LineAddr(130)), Some([1u8; 64]));
        s0.restore(&snap);
        assert_eq!(s0.read(LineAddr(130)), [1u8; 64]);
    }

    #[test]
    #[should_panic(expected = "foreign line")]
    fn sharded_backend_rejects_foreign_data_stores() {
        let mut s1 = ShardedBackend::new(1, 2, 256);
        s1.store(LineAddr(0), [1u8; 64]); // page 0 belongs to shard 0
    }

    #[test]
    #[should_panic(expected = "erase foreign line")]
    fn sharded_backend_rejects_foreign_data_erases() {
        // Regression: erase used to skip the ownership check store
        // performs, so a router bug could delete another shard's line.
        let mut s1 = ShardedBackend::new(1, 2, 256);
        s1.erase(LineAddr(0)); // page 0 belongs to shard 0
    }

    #[test]
    fn sharded_backend_restore_filters_foreign_lines() {
        // Regression: restore used to install a merged service-wide
        // image wholesale, double-materializing pages into two shards.
        let mut adversarial = LineStore::new();
        adversarial.write(LineAddr(0), [10u8; 64]); // page 0 → shard 0
        adversarial.write(LineAddr(64), [11u8; 64]); // page 1 → shard 1
        adversarial.write(LineAddr(128), [12u8; 64]); // page 2 → shard 0
        adversarial.write(LineAddr(300), [13u8; 64]); // metadata: both

        let mut s0 = ShardedBackend::new(0, 2, 256);
        s0.restore(&adversarial);
        assert_eq!(s0.load(LineAddr(0)), Some([10u8; 64]));
        assert_eq!(s0.load(LineAddr(128)), Some([12u8; 64]));
        assert_eq!(s0.load(LineAddr(300)), Some([13u8; 64]));
        assert_eq!(
            s0.load(LineAddr(64)),
            None,
            "shard 0 must not materialize shard 1's page"
        );
        assert_eq!(s0.len(), 3);

        let mut s1 = ShardedBackend::new(1, 2, 256);
        s1.restore(&adversarial);
        assert_eq!(s1.load(LineAddr(64)), Some([11u8; 64]));
        assert_eq!(s1.load(LineAddr(0)), None);
        assert_eq!(s1.len(), 2);
    }

    #[test]
    fn line_store_implements_the_contract() {
        let mut b: Box<dyn DurableBackend> = Box::new(LineStore::new());
        assert!(b.is_empty());
        assert_eq!(b.read(LineAddr(3)), ZERO_LINE);
        b.store(LineAddr(3), [7u8; 64]);
        assert!(b.contains(LineAddr(3)));
        assert_eq!(b.load(LineAddr(3)), Some([7u8; 64]));
        assert_eq!(b.len(), 1);
        assert_eq!(b.addrs(), vec![LineAddr(3)]);
        let snap = b.snapshot();
        assert_eq!(snap.read(LineAddr(3)), [7u8; 64]);
        assert_eq!(b.erase(LineAddr(3)), Some([7u8; 64]));
        assert!(b.is_empty());
        b.restore(&snap);
        assert_eq!(b.read(LineAddr(3)), [7u8; 64]);
    }
}
