//! The durable-NVM storage seam.
//!
//! [`DurableBackend`] abstracts the *crash-survivable* line store that
//! the secure-memory subsystem persists into. The simulator uses the
//! in-memory [`LineStore`] implementation; tests substitute
//! instrumented mocks to prove that crash images and recovery resume
//! flow exclusively through this interface (no hidden side channels to
//! the durable state).

use crate::store::{Line, LineStore, ZERO_LINE};
use crate::LineAddr;

/// Crash-survivable line-granular storage.
///
/// Semantics every implementation must uphold:
///
/// * a line never stored reads as [`ZERO_LINE`] and loads as `None`;
/// * [`store`](Self::store) makes the content durable immediately
///   (callers model ADR/WPQ ordering above this trait);
/// * [`snapshot`](Self::snapshot) captures exactly the stored lines —
///   it is what a power failure preserves.
pub trait DurableBackend: std::fmt::Debug + Send {
    /// The stored content of `line`, if any.
    fn load(&self, line: LineAddr) -> Option<Line>;

    /// Durably stores `content` at `line`.
    fn store(&mut self, line: LineAddr, content: Line);

    /// Removes `line`, returning its previous content.
    fn erase(&mut self, line: LineAddr) -> Option<Line>;

    /// Number of stored lines.
    fn len(&self) -> usize;

    /// Every stored line address, in unspecified order.
    fn addrs(&self) -> Vec<LineAddr>;

    /// Copies the full durable contents into a [`LineStore`] (the
    /// crash-image representation).
    fn snapshot(&self) -> LineStore;

    /// Replaces the entire durable contents with `image`.
    fn restore(&mut self, image: &LineStore);

    /// Whether nothing is stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `line` is stored.
    fn contains(&self, line: LineAddr) -> bool {
        self.load(line).is_some()
    }

    /// The content of `line`, defaulting to [`ZERO_LINE`].
    fn read(&self, line: LineAddr) -> Line {
        self.load(line).unwrap_or(ZERO_LINE)
    }
}

impl DurableBackend for LineStore {
    fn load(&self, line: LineAddr) -> Option<Line> {
        self.get(line).copied()
    }

    fn store(&mut self, line: LineAddr, content: Line) {
        self.write(line, content);
    }

    fn erase(&mut self, line: LineAddr) -> Option<Line> {
        LineStore::erase(self, line)
    }

    fn len(&self) -> usize {
        LineStore::len(self)
    }

    fn addrs(&self) -> Vec<LineAddr> {
        self.iter().map(|(l, _)| l).collect()
    }

    fn snapshot(&self) -> LineStore {
        self.clone()
    }

    fn restore(&mut self, image: &LineStore) {
        *self = image.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_store_implements_the_contract() {
        let mut b: Box<dyn DurableBackend> = Box::new(LineStore::new());
        assert!(b.is_empty());
        assert_eq!(b.read(LineAddr(3)), ZERO_LINE);
        b.store(LineAddr(3), [7u8; 64]);
        assert!(b.contains(LineAddr(3)));
        assert_eq!(b.load(LineAddr(3)), Some([7u8; 64]));
        assert_eq!(b.len(), 1);
        assert_eq!(b.addrs(), vec![LineAddr(3)]);
        let snap = b.snapshot();
        assert_eq!(snap.read(LineAddr(3)), [7u8; 64]);
        assert_eq!(b.erase(LineAddr(3)), Some([7u8; 64]));
        assert!(b.is_empty());
        b.restore(&snap);
        assert_eq!(b.read(LineAddr(3)), [7u8; 64]);
    }
}
