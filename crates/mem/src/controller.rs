//! Memory controller timing model.
//!
//! The paper's controller has a 32-entry read queue, a 64-entry write
//! queue, and — central to cc-NVM — a 64-entry write pending queue
//! (WPQ) protected by Asynchronous DRAM Refresh (ADR): anything the WPQ
//! has accepted is guaranteed to reach NVM even across a power failure.
//!
//! Reads are blocking (the core observes their completion time); writes
//! and WPQ entries are posted — the caller only stalls when the target
//! queue has no free slot. The drain protocol of §4.2 uses
//! [`MemController::flush_wpq`] to time the `end`-signal flush.
//!
//! Durability bookkeeping (which lines survive a crash) is a protocol
//! property and lives in the `ccnvm` crate; this model accounts cycles
//! and traffic only.

use crate::addr::LineAddr;
use crate::timing::{BoundedQueue, Cycle, NvmTiming, NvmTimingConfig};

/// Queue sizes and device parameters for the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemControllerConfig {
    /// NVM device timing.
    pub nvm: NvmTimingConfig,
    /// Read queue entries (paper: 32).
    pub read_queue_entries: usize,
    /// Write queue entries (paper: 64).
    pub write_queue_entries: usize,
    /// Write pending queue entries (paper: 64, i.e. 4 KB).
    pub wpq_entries: usize,
}

impl MemControllerConfig {
    /// The paper's configuration (§5).
    pub fn paper() -> Self {
        Self {
            nvm: NvmTimingConfig::pcm(),
            read_queue_entries: 32,
            write_queue_entries: 64,
            wpq_entries: 64,
        }
    }
}

impl Default for MemControllerConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Traffic and stall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Lines read from NVM.
    pub reads: u64,
    /// Lines written to NVM through the regular write queue.
    pub writes: u64,
    /// Writes coalesced into an already-pending write-queue entry
    /// (no additional NVM array write).
    pub merged_writes: u64,
    /// Lines written to NVM through the WPQ (drain traffic).
    pub wpq_writes: u64,
    /// Accepts that had to wait for a read-queue slot.
    pub read_queue_stalls: u64,
    /// Accepts that had to wait for a write-queue slot.
    pub write_queue_stalls: u64,
    /// Accepts that had to wait for a WPQ slot.
    pub wpq_stalls: u64,
}

impl MemStats {
    /// Total lines written to NVM by any path — the paper's
    /// "# of Writes" metric (Fig. 5b).
    pub fn total_writes(&self) -> u64 {
        self.writes + self.wpq_writes
    }
}

/// Per-line write-endurance statistics.
///
/// PCM cells endure a bounded number of writes (~10⁷–10⁹); the paper
/// motivates cc-NVM's write-efficiency by NVM lifetime ("this results
/// in high memory write traffic, which negatively impacts NVM
/// lifetime"). [`MemController`] tracks array writes per line so
/// designs can be compared on *wear*, not just total traffic: a design
/// that hammers the same tree path ages those cells fastest, and it is
/// the hottest line that determines the (un-leveled) device lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearStats {
    /// Array writes to the single most-written line.
    pub max_line_writes: u64,
    /// The hottest line itself.
    pub hottest_line: Option<LineAddr>,
    /// Distinct lines ever written.
    pub lines_written: u64,
    /// Mean writes over the lines ever written.
    pub mean_line_writes: f64,
}

/// The memory controller: queues in front of a banked NVM device.
///
/// # Example
///
/// ```
/// use ccnvm_mem::{addr::LineAddr, MemController, MemControllerConfig};
///
/// let mut mc = MemController::new(MemControllerConfig::paper());
/// let done = mc.read(LineAddr(0), 0);
/// assert_eq!(done, 180); // 60 ns at 3 GHz
/// let accepted = mc.write(LineAddr(1), done);
/// assert_eq!(accepted, done); // posted write, queue has room
/// ```
#[derive(Debug, Clone)]
pub struct MemController {
    config: MemControllerConfig,
    nvm: NvmTiming,
    read_queue: BoundedQueue,
    write_queue: BoundedQueue,
    wpq: BoundedQueue,
    /// Pending (not yet serviced) write-queue entries by line, for
    /// write combining: a store to a line that is still queued merges
    /// into the existing entry instead of issuing another array write.
    pending_writes: std::collections::HashMap<u64, Cycle>,
    /// Array writes per line, for endurance accounting.
    wear: std::collections::HashMap<u64, u64>,
    stats: MemStats,
}

impl MemController {
    /// Creates an idle controller.
    pub fn new(config: MemControllerConfig) -> Self {
        Self {
            config,
            nvm: NvmTiming::new(config.nvm),
            read_queue: BoundedQueue::new(config.read_queue_entries),
            write_queue: BoundedQueue::new(config.write_queue_entries),
            wpq: BoundedQueue::new(config.wpq_entries),
            pending_writes: std::collections::HashMap::new(),
            wear: std::collections::HashMap::new(),
            stats: MemStats::default(),
        }
    }

    /// Issues a blocking read of `line`; returns its completion cycle.
    pub fn read(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let before = self.read_queue.stalled_accepts();
        let slot = self.read_queue.accept(now);
        self.stats.read_queue_stalls += self.read_queue.stalled_accepts() - before;
        let done = self.nvm.access(line, false, slot);
        self.read_queue.push(done);
        self.stats.reads += 1;
        done
    }

    /// Posts a write of `line` through the regular write queue; returns
    /// the cycle at which the request was *accepted* (the earliest time
    /// the producer may continue).
    ///
    /// Writes to a line that is still pending in the queue are
    /// coalesced (write combining): no additional array write is
    /// issued or counted.
    pub fn write(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        self.pending_writes.retain(|_, done| *done > now);
        if let Some(&done) = self.pending_writes.get(&line.0) {
            if done > now {
                self.stats.merged_writes += 1;
                return now;
            }
        }
        let before = self.write_queue.stalled_accepts();
        let slot = self.write_queue.accept(now);
        self.stats.write_queue_stalls += self.write_queue.stalled_accepts() - before;
        let done = self.nvm.access(line, true, slot);
        self.write_queue.push(done);
        self.pending_writes.insert(line.0, done);
        *self.wear.entry(line.0).or_insert(0) += 1;
        self.stats.writes += 1;
        slot
    }

    /// Posts a write of `line` through the ADR-protected WPQ; returns
    /// the acceptance cycle.
    pub fn wpq_write(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let before = self.wpq.stalled_accepts();
        let slot = self.wpq.accept(now);
        self.stats.wpq_stalls += self.wpq.stalled_accepts() - before;
        let done = self.nvm.access(line, true, slot);
        self.wpq.push(done);
        *self.wear.entry(line.0).or_insert(0) += 1;
        self.stats.wpq_writes += 1;
        slot
    }

    /// Cycle at which everything currently in the WPQ has reached NVM
    /// (the drain `end`-signal flush of §4.2).
    pub fn flush_wpq(&mut self, now: Cycle) -> Cycle {
        self.wpq.last_completion().unwrap_or(now).max(now)
    }

    /// Cycle at which everything currently in the write queue has
    /// reached NVM.
    pub fn flush_writes(&mut self, now: Cycle) -> Cycle {
        self.write_queue.last_completion().unwrap_or(now).max(now)
    }

    /// Traffic and stall counters so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Per-line endurance statistics so far.
    pub fn wear_stats(&self) -> WearStats {
        let mut max = 0u64;
        let mut hottest = None;
        let mut total = 0u64;
        for (&line, &count) in &self.wear {
            total += count;
            // Ties break to the lowest address so the report is
            // deterministic despite the map's iteration order.
            let wins =
                count > max || (count == max && hottest.is_some_and(|h: LineAddr| line < h.0));
            if wins {
                max = count;
                hottest = Some(LineAddr(line));
            }
        }
        let lines = self.wear.len() as u64;
        WearStats {
            max_line_writes: max,
            hottest_line: hottest,
            lines_written: lines,
            mean_line_writes: if lines == 0 {
                0.0
            } else {
                total as f64 / lines as f64
            },
        }
    }

    /// Array writes endured by `line` so far.
    pub fn line_wear(&self, line: LineAddr) -> u64 {
        self.wear.get(&line.0).copied().unwrap_or(0)
    }

    /// The configuration in use.
    pub fn config(&self) -> MemControllerConfig {
        self.config
    }

    /// WPQ slots currently free as of `now` (drainer-visible headroom).
    pub fn wpq_free_slots(&mut self, now: Cycle) -> usize {
        // `accept` would retire entries; probe without side effects by
        // cloning the heap state is wasteful — instead retire via accept
        // semantics: capacity minus live entries older than `now`.
        let _ = now;
        self.config.wpq_entries - self.wpq.len().min(self.config.wpq_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemController {
        MemController::new(MemControllerConfig::paper())
    }

    #[test]
    fn read_returns_completion() {
        let mut m = mc();
        assert_eq!(m.read(LineAddr(0), 0), 180);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn posted_write_returns_accept_time() {
        let mut m = mc();
        assert_eq!(m.write(LineAddr(0), 5), 5);
        assert_eq!(m.stats().writes, 1);
    }

    #[test]
    fn write_queue_backpressure() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 2,
            wpq_entries: 2,
        });
        assert_eq!(m.write(LineAddr(0), 0), 0); // completes at 100
        assert_eq!(m.write(LineAddr(1), 0), 0); // completes at 200
                                                // Queue full: third write stalls until the first retires.
        assert_eq!(m.write(LineAddr(2), 0), 100);
        assert_eq!(m.stats().write_queue_stalls, 1);
    }

    #[test]
    fn wpq_flush_times_last_entry() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 4,
        });
        m.wpq_write(LineAddr(0), 0); // done at 100
        m.wpq_write(LineAddr(1), 0); // done at 200
        assert_eq!(m.flush_wpq(0), 200);
        assert_eq!(m.stats().wpq_writes, 2);
        assert_eq!(m.stats().total_writes(), 2);
    }

    #[test]
    fn wear_tracks_array_writes_only() {
        let mut m = mc();
        m.write(LineAddr(5), 0);
        m.write(LineAddr(5), 0); // merged: no wear
        m.wpq_write(LineAddr(5), 10_000);
        m.wpq_write(LineAddr(9), 10_000);
        let w = m.wear_stats();
        assert_eq!(m.line_wear(LineAddr(5)), 2);
        assert_eq!(m.line_wear(LineAddr(9)), 1);
        assert_eq!(m.line_wear(LineAddr(7)), 0);
        assert_eq!(w.max_line_writes, 2);
        assert_eq!(w.hottest_line, Some(LineAddr(5)));
        assert_eq!(w.lines_written, 2);
        assert!((w.mean_line_writes - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wear_stats_empty() {
        let m = mc();
        let w = m.wear_stats();
        assert_eq!(w.max_line_writes, 0);
        assert_eq!(w.hottest_line, None);
        assert_eq!(w.mean_line_writes, 0.0);
    }

    #[test]
    fn flush_of_empty_wpq_is_noop() {
        let mut m = mc();
        assert_eq!(m.flush_wpq(42), 42);
    }

    #[test]
    fn reads_bypass_buffered_writes() {
        // Reads are prioritized: a pending write does not delay a read
        // to the same bank (the write drains in the gaps).
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 4,
        });
        m.write(LineAddr(0), 0); // write service occupies until 100
        assert_eq!(m.read(LineAddr(0), 0), 10);
        // A second write to the same still-pending line coalesces.
        assert_eq!(m.write(LineAddr(0), 0), 0);
        assert_eq!(m.stats().merged_writes, 1);
        assert_eq!(m.flush_writes(0), 100, "merged write issues no array write");
        // A different line on the same (only) bank serializes.
        assert_eq!(m.write(LineAddr(1), 0), 0);
        assert_eq!(m.flush_writes(0), 200);
        // Once the original write has drained, the same line writes again.
        assert_eq!(m.write(LineAddr(0), 250), 250);
        assert_eq!(m.stats().writes, 3);
    }
}
