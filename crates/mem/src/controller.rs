//! Memory controller timing model.
//!
//! The paper's controller has a 32-entry read queue, a 64-entry write
//! queue, and — central to cc-NVM — a 64-entry write pending queue
//! (WPQ) protected by Asynchronous DRAM Refresh (ADR): anything the WPQ
//! has accepted is guaranteed to reach NVM even across a power failure.
//!
//! Reads are blocking (the core observes their completion time); writes
//! and WPQ entries are posted — the caller only stalls when the target
//! queue has no free slot. The drain protocol of §4.2 uses
//! [`MemController::flush_wpq`] to time the `end`-signal flush.
//!
//! Durability bookkeeping (which lines survive a crash) is a protocol
//! property and lives in the `ccnvm` crate; this model accounts cycles
//! and traffic only.

use crate::addr::LineAddr;
use crate::timing::{BoundedQueue, Cycle, NvmTiming, NvmTimingConfig};
use std::collections::VecDeque;

/// Which controller queue a [`QueueEvent`] refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The blocking read queue.
    Read,
    /// The posted regular write queue.
    Write,
    /// The ADR-protected write pending queue.
    Wpq,
}

impl QueueKind {
    /// Stable lower-case name used in trace exports.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Read => "read",
            QueueKind::Write => "write",
            QueueKind::Wpq => "wpq",
        }
    }
}

/// One queue transaction observed by a [`QueueRecorder`]: a request
/// accepted into a controller queue, sampled at its accept time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEvent {
    /// Cycle the request was accepted (its slot time).
    pub at: Cycle,
    /// The queue it entered.
    pub queue: QueueKind,
    /// Entries in flight immediately after the accept (occupancy
    /// sample).
    pub occupancy: usize,
    /// Whether the accept had to wait for a slot to free up.
    pub stalled: bool,
}

/// Bounded buffer of [`QueueEvent`]s. When full, the oldest event is
/// dropped (and counted) so a long run cannot grow memory without
/// bound. The recorder also tracks the WPQ occupancy high-water mark
/// since it was last taken, which the drain protocol reads per epoch.
#[derive(Debug, Clone)]
pub struct QueueRecorder {
    events: VecDeque<QueueEvent>,
    capacity: usize,
    dropped: u64,
    wpq_high_water: usize,
}

impl QueueRecorder {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "recorder capacity must be positive");
        Self {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            wpq_high_water: 0,
        }
    }

    fn record(&mut self, event: QueueEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        if event.queue == QueueKind::Wpq {
            self.wpq_high_water = self.wpq_high_water.max(event.occupancy);
        }
        self.events.push_back(event);
    }

    /// Buffered events not yet taken.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Queue sizes and device parameters for the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemControllerConfig {
    /// NVM device timing.
    pub nvm: NvmTimingConfig,
    /// Read queue entries (paper: 32).
    pub read_queue_entries: usize,
    /// Write queue entries (paper: 64).
    pub write_queue_entries: usize,
    /// Write pending queue entries (paper: 64, i.e. 4 KB).
    pub wpq_entries: usize,
}

impl MemControllerConfig {
    /// The paper's configuration (§5).
    pub fn paper() -> Self {
        Self {
            nvm: NvmTimingConfig::pcm(),
            read_queue_entries: 32,
            write_queue_entries: 64,
            wpq_entries: 64,
        }
    }
}

impl Default for MemControllerConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Traffic and stall counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Lines read from NVM.
    pub reads: u64,
    /// Lines written to NVM through the regular write queue.
    pub writes: u64,
    /// Writes coalesced into an already-pending write-queue entry
    /// (no additional NVM array write).
    pub merged_writes: u64,
    /// Lines written to NVM through the WPQ (drain traffic).
    pub wpq_writes: u64,
    /// Accepts that had to wait for a read-queue slot.
    pub read_queue_stalls: u64,
    /// Accepts that had to wait for a write-queue slot.
    pub write_queue_stalls: u64,
    /// Accepts that had to wait for a WPQ slot.
    pub wpq_stalls: u64,
    /// Cycles read accepts waited for a read-queue slot.
    pub read_wait_cycles: u64,
    /// Cycles write accepts waited for a write-queue slot (merged
    /// writes never wait).
    pub write_wait_cycles: u64,
    /// Cycles WPQ accepts waited for an ADR slot.
    pub wpq_wait_cycles: u64,
}

impl MemStats {
    /// Total lines written to NVM by any path — the paper's
    /// "# of Writes" metric (Fig. 5b).
    pub fn total_writes(&self) -> u64 {
        self.writes + self.wpq_writes
    }
}

/// Per-line write-endurance statistics.
///
/// PCM cells endure a bounded number of writes (~10⁷–10⁹); the paper
/// motivates cc-NVM's write-efficiency by NVM lifetime ("this results
/// in high memory write traffic, which negatively impacts NVM
/// lifetime"). [`MemController`] tracks array writes per line so
/// designs can be compared on *wear*, not just total traffic: a design
/// that hammers the same tree path ages those cells fastest, and it is
/// the hottest line that determines the (un-leveled) device lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WearStats {
    /// Array writes to the single most-written line.
    pub max_line_writes: u64,
    /// The hottest line itself.
    pub hottest_line: Option<LineAddr>,
    /// Distinct lines ever written.
    pub lines_written: u64,
    /// Mean writes over the lines ever written.
    pub mean_line_writes: f64,
}

/// The memory controller: queues in front of a banked NVM device.
///
/// # Example
///
/// ```
/// use ccnvm_mem::{addr::LineAddr, MemController, MemControllerConfig};
///
/// let mut mc = MemController::new(MemControllerConfig::paper());
/// let done = mc.read(LineAddr(0), 0);
/// assert_eq!(done, 180); // 60 ns at 3 GHz
/// let accepted = mc.write(LineAddr(1), done);
/// assert_eq!(accepted, done); // posted write, queue has room
/// ```
#[derive(Debug, Clone)]
pub struct MemController {
    config: MemControllerConfig,
    nvm: NvmTiming,
    read_queue: BoundedQueue,
    write_queue: BoundedQueue,
    wpq: BoundedQueue,
    /// Pending (not yet serviced) write-queue entries by line, for
    /// write combining: a store to a line that is still queued merges
    /// into the existing entry instead of issuing another array write.
    pending_writes: std::collections::HashMap<u64, Cycle>,
    /// Array writes per line, for endurance accounting.
    wear: std::collections::HashMap<u64, u64>,
    /// Running copy of the hottest line's write count (so gauges can
    /// sample it without scanning the wear map).
    wear_max: u64,
    stats: MemStats,
    /// Optional queue-event observer; `None` (the default) keeps the
    /// hot path free of any recording work or allocation.
    recorder: Option<QueueRecorder>,
}

impl MemController {
    /// Creates an idle controller.
    pub fn new(config: MemControllerConfig) -> Self {
        Self {
            config,
            nvm: NvmTiming::new(config.nvm),
            read_queue: BoundedQueue::new(config.read_queue_entries),
            write_queue: BoundedQueue::new(config.write_queue_entries),
            wpq: BoundedQueue::new(config.wpq_entries),
            pending_writes: std::collections::HashMap::new(),
            wear: std::collections::HashMap::new(),
            wear_max: 0,
            stats: MemStats::default(),
            recorder: None,
        }
    }

    /// Attaches a bounded queue-event recorder, replacing any existing
    /// one. Until detached (via [`MemController::take_queue_events`]
    /// consumers draining it), every queue accept is sampled.
    pub fn attach_queue_recorder(&mut self, capacity: usize) {
        self.recorder = Some(QueueRecorder::new(capacity));
    }

    /// The attached queue recorder, if any.
    pub fn queue_recorder(&self) -> Option<&QueueRecorder> {
        self.recorder.as_ref()
    }

    /// Removes and returns all buffered queue events in record order.
    /// Returns an empty vector when no recorder is attached (the empty
    /// `Vec` does not allocate).
    pub fn take_queue_events(&mut self) -> Vec<QueueEvent> {
        match &mut self.recorder {
            Some(rec) => rec.events.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// Highest WPQ occupancy observed since this was last called;
    /// resets the mark. Returns 0 when no recorder is attached.
    pub fn take_wpq_high_water(&mut self) -> usize {
        match &mut self.recorder {
            Some(rec) => std::mem::take(&mut rec.wpq_high_water),
            None => 0,
        }
    }

    /// WPQ entries in flight as of the last accept.
    pub fn wpq_len(&self) -> usize {
        self.wpq.len()
    }

    /// WPQ entries whose array writes have not completed by `now` —
    /// the sampled-occupancy gauge. Pure probe: applies the same
    /// retirement rule as `accept` without retiring anything.
    pub fn wpq_occupancy(&self, now: Cycle) -> usize {
        self.wpq.len_at(now).min(self.config.wpq_entries)
    }

    /// Read-queue entries in flight as of `now` (pure probe).
    pub fn read_queue_occupancy(&self, now: Cycle) -> usize {
        self.read_queue
            .len_at(now)
            .min(self.config.read_queue_entries)
    }

    /// Write-queue entries in flight as of `now` (pure probe).
    pub fn write_queue_occupancy(&self, now: Cycle) -> usize {
        self.write_queue
            .len_at(now)
            .min(self.config.write_queue_entries)
    }

    /// Issues a blocking read of `line`; returns its completion cycle.
    pub fn read(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let before = self.read_queue.stalled_accepts();
        let slot = self.read_queue.accept(now);
        let stalled = self.read_queue.stalled_accepts() > before;
        self.stats.read_queue_stalls += self.read_queue.stalled_accepts() - before;
        self.stats.read_wait_cycles += slot.saturating_sub(now);
        let done = self.nvm.access(line, false, slot);
        self.read_queue.push(done);
        self.stats.reads += 1;
        if let Some(rec) = &mut self.recorder {
            rec.record(QueueEvent {
                at: slot,
                queue: QueueKind::Read,
                occupancy: self.read_queue.len(),
                stalled,
            });
        }
        done
    }

    /// Posts a write of `line` through the regular write queue; returns
    /// the cycle at which the request was *accepted* (the earliest time
    /// the producer may continue).
    ///
    /// Writes to a line that is still pending in the queue are
    /// coalesced (write combining): no additional array write is
    /// issued or counted.
    pub fn write(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        // Staleness is checked on lookup: an entry whose write already
        // drained (`done <= now`) no longer merges, and the insert
        // below overwrites it. At most one entry per distinct line ever
        // accumulates — the same footprint as the wear map.
        if let Some(&done) = self.pending_writes.get(&line.0) {
            if done > now {
                self.stats.merged_writes += 1;
                return now;
            }
        }
        let before = self.write_queue.stalled_accepts();
        let slot = self.write_queue.accept(now);
        let stalled = self.write_queue.stalled_accepts() > before;
        self.stats.write_queue_stalls += self.write_queue.stalled_accepts() - before;
        self.stats.write_wait_cycles += slot.saturating_sub(now);
        let done = self.nvm.access(line, true, slot);
        self.write_queue.push(done);
        self.pending_writes.insert(line.0, done);
        let worn = self.wear.entry(line.0).or_insert(0);
        *worn += 1;
        self.wear_max = self.wear_max.max(*worn);
        self.stats.writes += 1;
        if let Some(rec) = &mut self.recorder {
            rec.record(QueueEvent {
                at: slot,
                queue: QueueKind::Write,
                occupancy: self.write_queue.len(),
                stalled,
            });
        }
        slot
    }

    /// Posts a write of `line` through the ADR-protected WPQ; returns
    /// the acceptance cycle.
    pub fn wpq_write(&mut self, line: LineAddr, now: Cycle) -> Cycle {
        let before = self.wpq.stalled_accepts();
        let slot = self.wpq.accept(now);
        let stalled = self.wpq.stalled_accepts() > before;
        self.stats.wpq_stalls += self.wpq.stalled_accepts() - before;
        self.stats.wpq_wait_cycles += slot.saturating_sub(now);
        let done = self.nvm.access(line, true, slot);
        self.wpq.push(done);
        let worn = self.wear.entry(line.0).or_insert(0);
        *worn += 1;
        self.wear_max = self.wear_max.max(*worn);
        self.stats.wpq_writes += 1;
        if let Some(rec) = &mut self.recorder {
            rec.record(QueueEvent {
                at: slot,
                queue: QueueKind::Wpq,
                occupancy: self.wpq.len(),
                stalled,
            });
        }
        slot
    }

    /// Cycle at which everything currently in the WPQ has reached NVM
    /// (the drain `end`-signal flush of §4.2).
    pub fn flush_wpq(&mut self, now: Cycle) -> Cycle {
        self.wpq.last_completion().unwrap_or(now).max(now)
    }

    /// Cycle at which everything currently in the write queue has
    /// reached NVM.
    pub fn flush_writes(&mut self, now: Cycle) -> Cycle {
        self.write_queue.last_completion().unwrap_or(now).max(now)
    }

    /// Traffic and stall counters so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Per-line endurance statistics so far.
    pub fn wear_stats(&self) -> WearStats {
        let mut max = 0u64;
        let mut hottest = None;
        let mut total = 0u64;
        for (&line, &count) in &self.wear {
            total += count;
            // Ties break to the lowest address so the report is
            // deterministic despite the map's iteration order.
            let wins =
                count > max || (count == max && hottest.is_some_and(|h: LineAddr| line < h.0));
            if wins {
                max = count;
                hottest = Some(LineAddr(line));
            }
        }
        let lines = self.wear.len() as u64;
        WearStats {
            max_line_writes: max,
            hottest_line: hottest,
            lines_written: lines,
            mean_line_writes: if lines == 0 {
                0.0
            } else {
                total as f64 / lines as f64
            },
        }
    }

    /// Array writes endured by `line` so far.
    pub fn line_wear(&self, line: LineAddr) -> u64 {
        self.wear.get(&line.0).copied().unwrap_or(0)
    }

    /// Writes endured by the single hottest line so far — the running
    /// equivalent of [`WearStats::max_line_writes`], cheap enough to
    /// sample every metrics interval.
    pub fn max_line_wear(&self) -> u64 {
        self.wear_max
    }

    /// Every `(line, writes)` wear entry, sorted by address so the
    /// export order is deterministic despite the map.
    pub fn wear_entries(&self) -> Vec<(LineAddr, u64)> {
        let mut entries: Vec<(LineAddr, u64)> = self
            .wear
            .iter()
            .map(|(&line, &count)| (LineAddr(line), count))
            .collect();
        entries.sort_unstable_by_key(|&(line, _)| line.0);
        entries
    }

    /// The configuration in use.
    pub fn config(&self) -> MemControllerConfig {
        self.config
    }

    /// WPQ slots free as of `now` (drainer-visible headroom): capacity
    /// minus the entries whose array writes have not completed by
    /// `now`. Applies the same retirement rule as `accept` — entries
    /// done at or before `now` have left the queue — but is a pure
    /// probe: no entry is retired and no timing state changes.
    pub fn wpq_free_slots(&self, now: Cycle) -> usize {
        self.config.wpq_entries - self.wpq.len_at(now).min(self.config.wpq_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mc() -> MemController {
        MemController::new(MemControllerConfig::paper())
    }

    #[test]
    fn read_returns_completion() {
        let mut m = mc();
        assert_eq!(m.read(LineAddr(0), 0), 180);
        assert_eq!(m.stats().reads, 1);
    }

    #[test]
    fn posted_write_returns_accept_time() {
        let mut m = mc();
        assert_eq!(m.write(LineAddr(0), 5), 5);
        assert_eq!(m.stats().writes, 1);
    }

    #[test]
    fn write_queue_backpressure() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 2,
            wpq_entries: 2,
        });
        assert_eq!(m.write(LineAddr(0), 0), 0); // completes at 100
        assert_eq!(m.write(LineAddr(1), 0), 0); // completes at 200
                                                // Queue full: third write stalls until the first retires.
        assert_eq!(m.write(LineAddr(2), 0), 100);
        assert_eq!(m.stats().write_queue_stalls, 1);
        assert_eq!(m.stats().write_wait_cycles, 100, "waited 0..100 for a slot");
        assert_eq!(m.stats().read_wait_cycles, 0);
    }

    #[test]
    fn wpq_flush_times_last_entry() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 4,
        });
        m.wpq_write(LineAddr(0), 0); // done at 100
        m.wpq_write(LineAddr(1), 0); // done at 200
        assert_eq!(m.flush_wpq(0), 200);
        assert_eq!(m.stats().wpq_writes, 2);
        assert_eq!(m.stats().total_writes(), 2);
    }

    #[test]
    fn wear_tracks_array_writes_only() {
        let mut m = mc();
        m.write(LineAddr(5), 0);
        m.write(LineAddr(5), 0); // merged: no wear
        m.wpq_write(LineAddr(5), 10_000);
        m.wpq_write(LineAddr(9), 10_000);
        let w = m.wear_stats();
        assert_eq!(m.line_wear(LineAddr(5)), 2);
        assert_eq!(m.line_wear(LineAddr(9)), 1);
        assert_eq!(m.line_wear(LineAddr(7)), 0);
        assert_eq!(w.max_line_writes, 2);
        assert_eq!(w.hottest_line, Some(LineAddr(5)));
        assert_eq!(w.lines_written, 2);
        assert!((w.mean_line_writes - 1.5).abs() < 1e-12);
    }

    #[test]
    fn wear_stats_empty() {
        let m = mc();
        let w = m.wear_stats();
        assert_eq!(w.max_line_writes, 0);
        assert_eq!(w.hottest_line, None);
        assert_eq!(w.mean_line_writes, 0.0);
    }

    #[test]
    fn flush_of_empty_wpq_is_noop() {
        let mut m = mc();
        assert_eq!(m.flush_wpq(42), 42);
    }

    #[test]
    fn reads_bypass_buffered_writes() {
        // Reads are prioritized: a pending write does not delay a read
        // to the same bank (the write drains in the gaps).
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 4,
        });
        m.write(LineAddr(0), 0); // write service occupies until 100
        assert_eq!(m.read(LineAddr(0), 0), 10);
        // A second write to the same still-pending line coalesces.
        assert_eq!(m.write(LineAddr(0), 0), 0);
        assert_eq!(m.stats().merged_writes, 1);
        assert_eq!(m.flush_writes(0), 100, "merged write issues no array write");
        // A different line on the same (only) bank serializes.
        assert_eq!(m.write(LineAddr(1), 0), 0);
        assert_eq!(m.flush_writes(0), 200);
        // Once the original write has drained, the same line writes again.
        assert_eq!(m.write(LineAddr(0), 250), 250);
        assert_eq!(m.stats().writes, 3);
    }

    #[test]
    fn wpq_headroom_recovers_after_completions() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 4,
        });
        assert_eq!(m.wpq_free_slots(0), 4);
        m.wpq_write(LineAddr(0), 0); // completes at 100
        m.wpq_write(LineAddr(1), 0); // completes at 200 (same bank)
        assert_eq!(m.wpq_free_slots(0), 2);
        // At 150 the first entry has drained; the probe must see the
        // freed slot even though `accept` never ran at that cycle.
        assert_eq!(m.wpq_free_slots(150), 3);
        assert_eq!(m.wpq_free_slots(200), 4, "completion at `now` has retired");
        // The probe retired nothing: occupancy state is untouched.
        assert_eq!(m.wpq_len(), 2);
        assert_eq!(m.stats().wpq_stalls, 0);
    }

    #[test]
    fn merged_writes_accounting_unchanged_by_on_lookup_staleness() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 4,
        });
        m.write(LineAddr(0), 0); // pending until 100
        m.write(LineAddr(0), 50); // still pending: merges
        m.write(LineAddr(0), 99); // boundary: done > now, still merges
        m.write(LineAddr(0), 100); // done == now: stale, new array write
        m.write(LineAddr(0), 150); // pending until 300 now: merges
        assert_eq!(m.stats().writes, 2);
        assert_eq!(m.stats().merged_writes, 3);
        assert_eq!(m.line_wear(LineAddr(0)), 2, "merges issue no array write");
    }

    #[test]
    fn queue_recorder_samples_accepts() {
        let mut m = MemController::new(MemControllerConfig {
            nvm: NvmTimingConfig {
                read_cycles: 10,
                write_cycles: 100,
                banks: 1,
            },
            read_queue_entries: 4,
            write_queue_entries: 4,
            wpq_entries: 2,
        });
        assert!(m.take_queue_events().is_empty(), "no recorder attached");
        m.attach_queue_recorder(16);
        m.read(LineAddr(0), 0);
        m.write(LineAddr(1), 0);
        m.write(LineAddr(1), 0); // merged: no queue transaction, no event
        m.wpq_write(LineAddr(2), 0);
        m.wpq_write(LineAddr(3), 0);
        m.wpq_write(LineAddr(4), 0); // WPQ full: stalls until cycle 100
        let events = m.take_queue_events();
        assert_eq!(events.len(), 5, "merged write produced no event");
        assert_eq!(
            events[0],
            QueueEvent {
                at: 0,
                queue: QueueKind::Read,
                occupancy: 1,
                stalled: false
            }
        );
        assert_eq!(events[1].queue, QueueKind::Write);
        let wpq: Vec<_> = events
            .iter()
            .filter(|e| e.queue == QueueKind::Wpq)
            .collect();
        assert_eq!(wpq.len(), 3);
        assert!(!wpq[0].stalled);
        assert!(!wpq[1].stalled);
        assert!(wpq[2].stalled, "third WPQ write waited for a slot");
        assert!(m.stats().wpq_wait_cycles > 0, "stalled accept waited");
        assert_eq!(m.take_wpq_high_water(), 2);
        assert_eq!(m.take_wpq_high_water(), 0, "high-water mark resets");
        assert!(m.take_queue_events().is_empty(), "events were drained");
    }

    #[test]
    fn queue_recorder_bounds_memory() {
        let mut m = mc();
        m.attach_queue_recorder(2);
        m.read(LineAddr(0), 0);
        m.read(LineAddr(1), 0);
        m.read(LineAddr(2), 0);
        let rec = m.queue_recorder().expect("attached");
        assert_eq!(rec.len(), 2);
        assert_eq!(rec.dropped(), 1);
        let events = m.take_queue_events();
        assert_eq!(events.len(), 2, "oldest event was dropped");
    }
}
