//! Generic set-associative cache model.
//!
//! One model serves every cache level in the paper's configuration:
//! L1 (32 KB, 2-way), L2 (256 KB, 8-way) and the 128 KB 8-way Meta
//! Cache holding encryption counters and Merkle-tree nodes. All use
//! 64-byte lines, LRU replacement and write-back with write-allocate.
//!
//! The cache is *tag-only* — contents live in the functional layer —
//! but each resident line carries a caller-defined payload `T`. The
//! Meta Cache uses the payload to count updates per dirty line, which
//! drives the paper's third epoch trigger ("a cacheline has been
//! updated more than N times since it became dirty").

use crate::addr::{LineAddr, LINE_SIZE};

/// Geometry of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: u64,
    /// Associativity.
    pub ways: usize,
}

impl CacheConfig {
    /// Creates a config; sets are derived as `capacity / (64 × ways)`.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not yield at least one whole set.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        assert!(ways >= 1, "cache needs at least one way");
        assert!(
            capacity_bytes >= LINE_SIZE * ways as u64,
            "capacity {capacity_bytes} too small for {ways} ways"
        );
        Self {
            capacity_bytes,
            ways,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        (self.capacity_bytes / (LINE_SIZE * self.ways as u64)) as usize
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.sets() * self.ways
    }
}

#[derive(Debug, Clone)]
struct WayState<T> {
    addr: LineAddr,
    dirty: bool,
    lru_stamp: u64,
    payload: T,
}

/// A line pushed out of the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedLine<T> {
    /// Address of the victim line.
    pub addr: LineAddr,
    /// Whether the victim was dirty (needs write-back).
    pub dirty: bool,
    /// The victim's payload.
    pub payload: T,
}

/// Outcome of a cache access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessResult<T> {
    /// Whether the line was already resident.
    pub hit: bool,
    /// Victim evicted to make room (misses only, and only once the set
    /// is full).
    pub evicted: Option<EvictedLine<T>>,
}

impl<T> AccessResult<T> {
    /// Whether this access hit.
    pub fn is_hit(&self) -> bool {
        self.hit
    }

    /// Whether this access missed.
    pub fn is_miss(&self) -> bool {
        !self.hit
    }
}

/// Set-associative LRU cache with per-line payloads.
///
/// # Example
///
/// ```
/// use ccnvm_mem::{addr::LineAddr, cache::{CacheConfig, SetAssocCache}};
///
/// // Tiny 2-set, 2-way cache: 4 lines total.
/// let mut c = SetAssocCache::<u32>::new(CacheConfig::new(256, 2));
/// c.access(LineAddr(0), true);
/// *c.payload_mut(LineAddr(0)).unwrap() += 1;
/// assert_eq!(c.payload(LineAddr(0)), Some(&1));
/// assert!(c.is_dirty(LineAddr(0)));
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache<T = ()> {
    config: CacheConfig,
    sets: Vec<Vec<WayState<T>>>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl<T: Default> SetAssocCache<T> {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = (0..config.sets()).map(|_| Vec::new()).collect();
        Self {
            config,
            sets,
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `line`, allocating on miss; `write` marks it dirty.
    ///
    /// Returns whether it hit and any victim evicted to make room.
    pub fn access(&mut self, line: LineAddr, write: bool) -> AccessResult<T> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(line);
        let ways = self.config.ways;
        let set = &mut self.sets[set_idx];

        if let Some(way) = set.iter_mut().find(|w| w.addr == line) {
            way.lru_stamp = tick;
            way.dirty |= write;
            self.hits += 1;
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }

        self.misses += 1;
        let evicted = if set.len() == ways {
            let victim_idx = set
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru_stamp)
                .map(|(i, _)| i)
                .expect("full set is non-empty");
            let victim = set.swap_remove(victim_idx);
            Some(EvictedLine {
                addr: victim.addr,
                dirty: victim.dirty,
                payload: victim.payload,
            })
        } else {
            None
        };
        set.push(WayState {
            addr: line,
            dirty: write,
            lru_stamp: tick,
            payload: T::default(),
        });
        AccessResult {
            hit: false,
            evicted,
        }
    }
}

impl<T> SetAssocCache<T> {
    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.config.sets()
    }

    /// Whether `line` is resident (does not touch LRU state).
    pub fn contains(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)]
            .iter()
            .any(|w| w.addr == line)
    }

    /// Whether `line` is resident and dirty.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        self.sets[self.set_index(line)]
            .iter()
            .any(|w| w.addr == line && w.dirty)
    }

    /// Payload of `line`, if resident.
    pub fn payload(&self, line: LineAddr) -> Option<&T> {
        self.sets[self.set_index(line)]
            .iter()
            .find(|w| w.addr == line)
            .map(|w| &w.payload)
    }

    /// Mutable payload of `line`, if resident.
    pub fn payload_mut(&mut self, line: LineAddr) -> Option<&mut T> {
        let idx = self.set_index(line);
        self.sets[idx]
            .iter_mut()
            .find(|w| w.addr == line)
            .map(|w| &mut w.payload)
    }

    /// Clears `line`'s dirty bit (after a write-back), returning whether
    /// the line was resident.
    pub fn mark_clean(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.addr == line) {
            w.dirty = false;
            true
        } else {
            false
        }
    }

    /// Marks a resident `line` dirty without touching LRU order.
    pub fn mark_dirty(&mut self, line: LineAddr) -> bool {
        let idx = self.set_index(line);
        if let Some(w) = self.sets[idx].iter_mut().find(|w| w.addr == line) {
            w.dirty = true;
            true
        } else {
            false
        }
    }

    /// The victim an `access(line, …)` miss would evict right now:
    /// `Some((addr, dirty))` when the set is full and `line` is absent,
    /// `None` otherwise. Does not modify any state — callers use this
    /// to act (e.g. drain dirty state) *before* the eviction happens.
    pub fn peek_victim(&self, line: LineAddr) -> Option<(LineAddr, bool)> {
        let set = &self.sets[self.set_index(line)];
        if set.len() < self.config.ways || set.iter().any(|w| w.addr == line) {
            return None;
        }
        set.iter()
            .min_by_key(|w| w.lru_stamp)
            .map(|w| (w.addr, w.dirty))
    }

    /// Removes `line` from the cache, returning it if it was resident.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<EvictedLine<T>> {
        let idx = self.set_index(line);
        let set = &mut self.sets[idx];
        let pos = set.iter().position(|w| w.addr == line)?;
        let w = set.swap_remove(pos);
        Some(EvictedLine {
            addr: w.addr,
            dirty: w.dirty,
            payload: w.payload,
        })
    }

    /// All resident dirty line addresses, in unspecified order.
    ///
    /// Allocation-free: the drain path walks this on every trigger, so
    /// it borrows the sets instead of materialising a `Vec` per call.
    pub fn dirty_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets
            .iter()
            .flatten()
            .filter(|w| w.dirty)
            .map(|w| w.addr)
    }

    /// All resident line addresses, in unspecified order.
    ///
    /// Allocation-free for the same reason as [`Self::dirty_lines`].
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.sets.iter().flatten().map(|w| w.addr)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// `(hits, misses)` since construction.
    pub fn hit_miss(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache<()> {
        // 1 set × 2 ways.
        SetAssocCache::new(CacheConfig::new(128, 2))
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::new(32 * 1024, 2);
        assert_eq!(c.sets(), 256);
        assert_eq!(c.lines(), 512);
        let c = CacheConfig::new(256 * 1024, 8);
        assert_eq!(c.sets(), 512);
        let c = CacheConfig::new(128 * 1024, 8);
        assert_eq!(c.sets(), 256);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(c.access(LineAddr(0), false).is_miss());
        assert!(c.access(LineAddr(0), false).is_hit());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        c.access(LineAddr(1), false);
        c.access(LineAddr(0), false); // 1 is now LRU
        let r = c.access(LineAddr(2), false);
        assert_eq!(r.evicted.map(|e| e.addr), Some(LineAddr(1)));
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(2)));
    }

    #[test]
    fn dirty_victim_reported() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        c.access(LineAddr(1), false);
        c.access(LineAddr(1), false);
        let r = c.access(LineAddr(2), false);
        let victim = r.evicted.expect("must evict");
        assert_eq!(victim.addr, LineAddr(0));
        assert!(victim.dirty);
    }

    #[test]
    fn write_marks_dirty_and_clean_clears() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        assert!(c.is_dirty(LineAddr(0)));
        assert!(c.mark_clean(LineAddr(0)));
        assert!(!c.is_dirty(LineAddr(0)));
        assert!(c.contains(LineAddr(0)));
    }

    #[test]
    fn set_mapping_isolates_sets() {
        // 2 sets × 1 way: lines 0 and 1 map to different sets.
        let mut c: SetAssocCache<()> = SetAssocCache::new(CacheConfig::new(128, 1));
        c.access(LineAddr(0), false);
        c.access(LineAddr(1), false);
        assert!(c.contains(LineAddr(0)));
        assert!(c.contains(LineAddr(1)));
        // Line 2 maps to set 0, evicting line 0.
        let r = c.access(LineAddr(2), false);
        assert_eq!(r.evicted.map(|e| e.addr), Some(LineAddr(0)));
        assert!(c.contains(LineAddr(1)));
    }

    #[test]
    fn payload_survives_until_eviction() {
        let mut c: SetAssocCache<u32> = SetAssocCache::new(CacheConfig::new(128, 2));
        c.access(LineAddr(0), true);
        *c.payload_mut(LineAddr(0)).unwrap() = 41;
        c.access(LineAddr(1), false);
        c.access(LineAddr(1), false);
        let victim = c.access(LineAddr(2), false).evicted.unwrap();
        assert_eq!(victim.addr, LineAddr(0));
        assert_eq!(victim.payload, 41);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        let e = c.invalidate(LineAddr(0)).unwrap();
        assert!(e.dirty);
        assert!(!c.contains(LineAddr(0)));
        assert!(c.invalidate(LineAddr(0)).is_none());
    }

    #[test]
    fn dirty_lines_lists_only_dirty() {
        let mut c = tiny();
        c.access(LineAddr(0), true);
        c.access(LineAddr(1), false);
        assert_eq!(c.dirty_lines().collect::<Vec<_>>(), vec![LineAddr(0)]);
        assert_eq!(c.resident_lines().count(), 2);
    }

    #[test]
    fn mark_clean_and_dirty_on_absent_lines() {
        let mut c = tiny();
        assert!(!c.mark_clean(LineAddr(7)), "absent line cannot be cleaned");
        assert!(!c.mark_dirty(LineAddr(7)), "absent line cannot be dirtied");
        assert!(!c.contains(LineAddr(7)), "marking must not insert");
        c.access(LineAddr(0), false);
        assert!(c.mark_dirty(LineAddr(0)));
        assert!(c.is_dirty(LineAddr(0)));
        // A line evicted from its set is absent again.
        c.access(LineAddr(1), false);
        c.access(LineAddr(2), false);
        let gone = if c.contains(LineAddr(0)) {
            LineAddr(1)
        } else {
            LineAddr(0)
        };
        assert!(!c.mark_dirty(gone));
        assert!(!c.mark_clean(gone));
    }

    #[test]
    fn invalidate_absent_line_is_none() {
        let mut c = tiny();
        assert!(c.invalidate(LineAddr(3)).is_none());
        c.access(LineAddr(0), false);
        assert!(c.invalidate(LineAddr(3)).is_none());
        assert!(
            c.contains(LineAddr(0)),
            "missed invalidate must not disturb residents"
        );
    }

    #[test]
    fn peek_victim_predicts_eviction() {
        let mut c = tiny();
        assert_eq!(c.peek_victim(LineAddr(0)), None, "empty set");
        c.access(LineAddr(0), true);
        c.access(LineAddr(1), false);
        assert_eq!(c.peek_victim(LineAddr(0)), None, "hit evicts nothing");
        assert_eq!(c.peek_victim(LineAddr(2)), Some((LineAddr(0), true)));
        let r = c.access(LineAddr(2), false);
        assert_eq!(r.evicted.map(|e| e.addr), Some(LineAddr(0)));
    }

    #[test]
    fn hit_rate_counters() {
        let mut c = tiny();
        c.access(LineAddr(0), false);
        c.access(LineAddr(0), false);
        c.access(LineAddr(0), false);
        assert_eq!(c.hit_miss(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn rejects_impossible_geometry() {
        CacheConfig::new(64, 2);
    }
}
