//! Strongly-typed physical addresses.
//!
//! The whole workspace works in 64-byte cache lines (the paper's block
//! size for every cache and for NVM). [`LineAddr`] is a line *index* —
//! byte address divided by 64 — and [`Addr`] is a byte address. Keeping
//! them as distinct newtypes prevents the classic off-by-×64 bugs when
//! security-metadata regions are being laid out.

use std::fmt;

/// Cache line (and NVM access) granularity in bytes.
pub const LINE_SIZE: u64 = 64;

/// Page size; one counter line covers the data lines of one page.
pub const PAGE_SIZE: u64 = 4096;

/// Data lines per page (`PAGE_SIZE / LINE_SIZE` = 64).
pub const LINES_PER_PAGE: u64 = PAGE_SIZE / LINE_SIZE;

/// A physical byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

/// A physical line index (byte address / 64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(pub u64);

impl Addr {
    /// The line containing this byte address.
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_SIZE)
    }

    /// Offset of this byte within its line.
    pub fn line_offset(self) -> usize {
        (self.0 % LINE_SIZE) as usize
    }
}

impl LineAddr {
    /// First byte address of this line.
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_SIZE)
    }

    /// Index of the 4 KB page containing this line.
    pub fn page(self) -> u64 {
        self.0 / LINES_PER_PAGE
    }

    /// Position of this line within its page (0..64).
    pub fn page_offset(self) -> usize {
        (self.0 % LINES_PER_PAGE) as usize
    }
}

impl From<Addr> for LineAddr {
    fn from(a: Addr) -> Self {
        a.line()
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_to_line() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(130).line_offset(), 2);
    }

    #[test]
    fn line_to_page() {
        assert_eq!(LineAddr(0).page(), 0);
        assert_eq!(LineAddr(63).page(), 0);
        assert_eq!(LineAddr(64).page(), 1);
        assert_eq!(LineAddr(65).page_offset(), 1);
    }

    #[test]
    fn roundtrip() {
        let l = LineAddr(12345);
        assert_eq!(l.base().line(), l);
    }

    #[test]
    fn display() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(LineAddr(16).to_string(), "L0x10");
    }
}
