//! NVM device and queue timing models.
//!
//! The paper models PCM with 60 ns reads and 150 ns writes at a 3 GHz
//! core clock (180 / 450 cycles). [`NvmTiming`] adds a simple banked
//! parallelism model: requests to different banks proceed concurrently,
//! requests to the same bank serialize. [`BoundedQueue`] models the
//! occupancy of the controller's finite queues (32-entry read queue,
//! 64-entry write queue, 64-entry WPQ): a request can only be accepted
//! once a slot is free, which is how queue backpressure reaches the
//! core.

use crate::addr::LineAddr;
use std::collections::BinaryHeap;

/// A point in simulated time, in core cycles.
pub type Cycle = u64;

/// Latency/geometry parameters of the NVM device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NvmTimingConfig {
    /// Array read latency in cycles (paper: 60 ns × 3 GHz = 180).
    pub read_cycles: u64,
    /// Array write latency in cycles (paper: 150 ns × 3 GHz = 450).
    pub write_cycles: u64,
    /// Number of independently-busy banks.
    pub banks: usize,
}

impl NvmTimingConfig {
    /// The paper's PCM configuration: 60 ns read, 150 ns write. The
    /// paper does not state a bank count; 16 banks is typical for a
    /// 16 GB DIMM and keeps write bandwidth from becoming the
    /// bottleneck (§5.2 notes it is not in their tests either).
    pub fn pcm() -> Self {
        Self {
            read_cycles: 180,
            write_cycles: 450,
            banks: 16,
        }
    }
}

impl Default for NvmTimingConfig {
    fn default() -> Self {
        Self::pcm()
    }
}

/// Banked busy-until timing model for the NVM array.
///
/// # Example
///
/// ```
/// use ccnvm_mem::{addr::LineAddr, timing::{NvmTiming, NvmTimingConfig}};
///
/// let mut nvm = NvmTiming::new(NvmTimingConfig::pcm());
/// let done = nvm.access(LineAddr(0), false, 0);
/// assert_eq!(done, 180);
/// // Same bank (16 banks apart): serializes behind the first read.
/// let done2 = nvm.access(LineAddr(16), false, 0);
/// assert_eq!(done2, 360);
/// ```
#[derive(Debug, Clone)]
pub struct NvmTiming {
    config: NvmTimingConfig,
    /// Read service is tracked separately from write service per bank:
    /// the controller prioritizes reads and drains buffered writes in
    /// the gaps, so reads effectively do not queue behind writes (the
    /// paper's evaluation likewise finds NVM write bandwidth is not the
    /// bottleneck). Same-kind accesses to a bank still serialize.
    bank_read_busy_until: Vec<Cycle>,
    bank_write_busy_until: Vec<Cycle>,
    reads: u64,
    writes: u64,
}

impl NvmTiming {
    /// Creates an idle device.
    pub fn new(config: NvmTimingConfig) -> Self {
        Self {
            config,
            bank_read_busy_until: vec![0; config.banks],
            bank_write_busy_until: vec![0; config.banks],
            reads: 0,
            writes: 0,
        }
    }

    fn bank_of(&self, line: LineAddr) -> usize {
        (line.0 as usize) % self.config.banks
    }

    /// Schedules an access to `line` no earlier than `now`; returns its
    /// completion cycle.
    pub fn access(&mut self, line: LineAddr, is_write: bool, now: Cycle) -> Cycle {
        let bank = self.bank_of(line);
        let (latency, busy) = if is_write {
            self.writes += 1;
            (
                self.config.write_cycles,
                &mut self.bank_write_busy_until[bank],
            )
        } else {
            self.reads += 1;
            (
                self.config.read_cycles,
                &mut self.bank_read_busy_until[bank],
            )
        };
        let start = now.max(*busy);
        let done = start + latency;
        *busy = done;
        done
    }

    /// `(reads, writes)` serviced so far.
    pub fn counts(&self) -> (u64, u64) {
        (self.reads, self.writes)
    }

    /// The configuration in use.
    pub fn config(&self) -> NvmTimingConfig {
        self.config
    }
}

/// Bounded-occupancy queue: tracks in-flight completion times and
/// reports when the next request can be accepted.
#[derive(Debug, Clone)]
pub struct BoundedQueue {
    capacity: usize,
    // Min-heap of completion times (via Reverse ordering).
    in_flight: BinaryHeap<std::cmp::Reverse<Cycle>>,
    stalled_accepts: u64,
}

impl BoundedQueue {
    /// Creates an empty queue with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            in_flight: BinaryHeap::new(),
            stalled_accepts: 0,
        }
    }

    /// Earliest cycle (≥ `now`) at which a slot is free. Retires
    /// completed entries as a side effect; if the queue is full, the
    /// oldest in-flight entry is retired and its completion time
    /// returned.
    pub fn accept(&mut self, now: Cycle) -> Cycle {
        while let Some(&std::cmp::Reverse(t)) = self.in_flight.peek() {
            if t <= now {
                self.in_flight.pop();
            } else {
                break;
            }
        }
        if self.in_flight.len() < self.capacity {
            now
        } else {
            self.stalled_accepts += 1;
            let std::cmp::Reverse(t) = self.in_flight.pop().expect("full queue is non-empty");
            t
        }
    }

    /// Records an accepted request that completes at `done`.
    pub fn push(&mut self, done: Cycle) {
        debug_assert!(
            self.in_flight.len() < self.capacity,
            "push without a free slot"
        );
        self.in_flight.push(std::cmp::Reverse(done));
    }

    /// Latest completion time of any in-flight entry, if the queue is
    /// non-empty (used to time full-queue flushes such as a WPQ drain).
    pub fn last_completion(&self) -> Option<Cycle> {
        self.in_flight.iter().map(|r| r.0).max()
    }

    /// Entries currently in flight (as of the last `accept`).
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// Entries that would still be in flight at `now` — completion
    /// times strictly after `now` — without retiring anything. This is
    /// the side-effect-free view `accept(now)` would see after its
    /// retirement pass; use it to probe headroom without mutating the
    /// queue.
    pub fn len_at(&self, now: Cycle) -> usize {
        self.in_flight.iter().filter(|r| r.0 > now).count()
    }

    /// Whether no entries are in flight.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Capacity in slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of accepts that had to wait for a slot.
    pub fn stalled_accepts(&self) -> u64 {
        self.stalled_accepts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_latencies() {
        let mut nvm = NvmTiming::new(NvmTimingConfig::pcm());
        assert_eq!(nvm.access(LineAddr(0), false, 100), 280);
        assert_eq!(nvm.access(LineAddr(1), true, 100), 550);
        assert_eq!(nvm.counts(), (1, 1));
    }

    #[test]
    fn same_bank_serializes() {
        let mut nvm = NvmTiming::new(NvmTimingConfig {
            read_cycles: 10,
            write_cycles: 20,
            banks: 2,
        });
        assert_eq!(nvm.access(LineAddr(0), false, 0), 10);
        assert_eq!(nvm.access(LineAddr(2), false, 0), 20); // bank 0 again
        assert_eq!(nvm.access(LineAddr(1), false, 0), 10); // bank 1 free
    }

    #[test]
    fn queue_accepts_until_full() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.accept(0), 0);
        q.push(100);
        assert_eq!(q.accept(0), 0);
        q.push(200);
        // Full: next accept waits for the earliest completion.
        assert_eq!(q.accept(0), 100);
        q.push(300);
        assert_eq!(q.stalled_accepts(), 1);
    }

    #[test]
    fn queue_retires_completed() {
        let mut q = BoundedQueue::new(1);
        assert_eq!(q.accept(0), 0);
        q.push(50);
        // At cycle 60 the entry has retired; no stall.
        assert_eq!(q.accept(60), 60);
        assert_eq!(q.stalled_accepts(), 0);
    }

    #[test]
    fn last_completion_tracks_max() {
        let mut q = BoundedQueue::new(4);
        q.accept(0);
        q.push(10);
        q.accept(0);
        q.push(30);
        q.accept(0);
        q.push(20);
        assert_eq!(q.last_completion(), Some(30));
    }

    #[test]
    fn len_at_is_pure() {
        let mut q = BoundedQueue::new(4);
        q.accept(0);
        q.push(10);
        q.accept(0);
        q.push(30);
        assert_eq!(q.len_at(5), 2);
        assert_eq!(q.len_at(10), 1, "completion at exactly `now` has retired");
        assert_eq!(q.len_at(40), 0);
        // Probing retired nothing: the heap still holds both entries.
        assert_eq!(q.len(), 2);
        assert_eq!(q.stalled_accepts(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        BoundedQueue::new(0);
    }
}
