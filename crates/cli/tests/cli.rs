//! End-to-end tests of the `ccnvm-sim` binary: typed CLI errors and
//! the observability/audit exit-code contract.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ccnvm-sim"))
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ccnvm-cli-{}-{name}", std::process::id()));
    p
}

#[test]
fn zero_metrics_interval_exits_nonzero_with_typed_message() {
    let out = bin()
        .args(["run", "--metrics-interval", "0"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--metrics-interval") && err.contains("positive"),
        "stderr was: {err}"
    );
}

#[test]
fn unwritable_chrome_trace_path_fails_fast() {
    let out = bin()
        .args([
            "run",
            "--instructions",
            "1000",
            "--chrome-trace",
            "/nonexistent-ccnvm-dir/trace.json",
        ])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("/nonexistent-ccnvm-dir/trace.json"),
        "stderr was: {err}"
    );
}

#[test]
fn bogus_audit_mode_is_rejected() {
    let out = bin()
        .args(["run", "--audit", "paranoid"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--audit") && err.contains("paranoid"),
        "stderr was: {err}"
    );
}

#[test]
fn strict_audit_selftest_exits_nonzero() {
    let out = bin()
        .args(["run", "--instructions", "5000", "--audit", "strict"])
        .env("CCNVM_AUDIT_SELFTEST", "1")
        .output()
        .expect("binary runs");
    assert!(
        !out.status.success(),
        "strict mode must fail on the injected violation"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("dirty-coverage"), "stderr was: {err}");
    assert!(err.contains("strict mode"), "stderr was: {err}");
}

#[test]
fn clean_strict_audit_run_succeeds() {
    let out = bin()
        .args(["run", "--instructions", "5000", "--audit", "strict"])
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "a clean run must pass strict audit");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("audit: clean"), "stderr was: {err}");
}

#[test]
fn metrics_export_report_round_trip() {
    let path = tmp("metrics.csv");
    let out = bin()
        .args([
            "run",
            "--bench",
            "lbm",
            "--instructions",
            "50000",
            "--metrics-out",
        ])
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let report = bin()
        .arg("report")
        .arg("--metrics")
        .arg(&path)
        .output()
        .expect("binary runs");
    assert!(report.status.success());
    let text = String::from_utf8_lossy(&report.stdout);
    assert!(text.contains("meta_resident"), "stdout was: {text}");
    assert!(text.contains("write_amp_milli"), "stdout was: {text}");
    std::fs::remove_file(&path).ok();
}
