//! `ccnvm-sim` — command-line driver for the cc-NVM simulator.
//!
//! ```text
//! ccnvm-sim run --design ccnvm --bench lbm --instructions 1000000
//! ccnvm-sim sweep --param n --values 4,8,16,32,64
//! ccnvm-sim recover --bench gcc
//! ccnvm-sim run --trace my_trace.txt --design sc
//! ccnvm-sim run --shards 4 --bench lbm        # sharded service
//! ccnvm-sim forensics --backend file:/tmp/f --kill drain-stage
//! ```
//!
//! With `--shards N` (N > 1) the run goes through the
//! [`ShardRouter`](ccnvm::shard::ShardRouter): N independent
//! secure-memory shards behind a page-interleaving request router.
//! Per-shard artifacts get a `.shardI` suffix before the extension,
//! the Chrome trace carries one process per shard, and the stage
//! profile is the stage-wise sum over shards. `--shards 1` takes the
//! original single-owner code paths, byte for byte.

mod args;

use args::{BackendChoice, Command, ReportArgs, RunArgs, SweepArgs, SweepParam, USAGE};
use ccnvm::metacache::MetaCacheOrg;
use ccnvm::obs::chrome::write_sharded_chrome_trace;
use ccnvm::obs::metrics::render_shard_gauges;
use ccnvm::obs::profile::{compare, parse_profile};
use ccnvm::prelude::*;
use ccnvm_bench::parallel::{parallel_for_mut, parallel_map, thread_count};
use ccnvm_mem::{crashpoint, DurableBackend, FileBackend, FileBackendConfig, FileIoCounters};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let command = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::List => {
            list();
            Ok(())
        }
        Command::Run(run) => cmd_run(&run),
        Command::Sweep(sweep) => cmd_sweep(&sweep),
        Command::Recover(run) => cmd_recover(&run),
        Command::Forensics(run) => cmd_forensics(&run),
        Command::Report(report) => cmd_report(&report),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn list() {
    println!("designs:");
    for d in DesignKind::ALL {
        println!("  {:<14} {}", cli_name(d), d.label());
    }
    println!("\nbenchmarks (synthetic SPEC2006 stand-ins):");
    for p in profiles::spec2006() {
        println!(
            "  {:<12} {:>4} refs/ki, {:>4.0}% stores, {:>5} MiB working set",
            p.name,
            p.mem_ops_per_kilo_instrs,
            p.write_fraction * 100.0,
            p.working_set_bytes >> 20
        );
    }
    println!("  {:<12} balanced mix for sensitivity sweeps", "mixed");
}

fn cli_name(d: DesignKind) -> &'static str {
    d.slug()
}

fn config_of(run: &RunArgs) -> Result<SimConfig, String> {
    let mut config = SimConfig::paper(run.design);
    config.update_limit = run.limit_n;
    config.dirty_queue_entries = run.queue_m;
    if run.split_meta {
        config.meta_org = MetaCacheOrg::Split;
    }
    // A bare `--crypto` flag wins; otherwise the CCNVM_CRYPTO env var
    // can force a tier (validate() rejects an unavailable forced tier).
    config.crypto = run.crypto.from_env_or();
    config.validate().map_err(|e| e.to_string())?;
    Ok(config)
}

fn backend_cfg(run: &RunArgs) -> FileBackendConfig {
    FileBackendConfig {
        fsync: run.fsync,
        flight: run.flight,
        ..FileBackendConfig::default()
    }
}

/// Feeds the workload — a replayed trace or a synthetic profile — into
/// the simulator until the instruction budget is met.
fn drive(sim: &mut Simulator, run: &RunArgs) -> Result<(), String> {
    if let Some(path) = &run.trace {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let ops = ccnvm_trace::text::read_trace(BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        if ops.is_empty() {
            return Err(format!("{path}: trace is empty"));
        }
        // Replay the trace cyclically until the instruction budget is
        // met, so short captures still produce steady-state numbers.
        while sim.instructions() < run.instructions {
            sim.run(ops.iter().copied(), run.instructions - sim.instructions())
                .map_err(|e| e.to_string())?;
        }
    } else {
        let profile = profiles::by_name(&run.bench)
            .ok_or_else(|| format!("unknown benchmark {:?} (try `list`)", run.bench))?;
        let trace = TraceGenerator::new(profile, run.seed);
        sim.run(trace, run.instructions)
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Builds the simulator over the chosen durable backend. The second
/// return is the file backend's I/O counter handle (usable after the
/// backend is boxed away), `None` for the in-memory store.
fn simulate(run: &RunArgs) -> Result<(Simulator, Option<Arc<FileIoCounters>>), String> {
    let config = config_of(run)?;
    let (mut sim, io) = match &run.backend {
        BackendChoice::Mem => (Simulator::new(config).map_err(|e| e.to_string())?, None),
        BackendChoice::File(dir) => {
            let backend = FileBackend::open(dir, backend_cfg(run)).map_err(|e| e.to_string())?;
            if !backend.is_empty() {
                // A fresh simulation starts from an all-zero image and
                // a default TCB root; layering it over a previous
                // run's lines would trip the integrity checks.
                return Err(format!(
                    "file store {dir} already holds {} lines from a previous run; \
                     the simulator starts from a fresh image — point --backend \
                     file: at a new (or emptied) directory",
                    backend.len()
                ));
            }
            let io = backend.io_counters();
            let replay = io.stats();
            if replay.discarded_bytes > 0 {
                eprintln!(
                    "file backend {dir}: discarded {} torn bytes from the log tail",
                    replay.discarded_bytes
                );
            }
            let sim =
                Simulator::with_backend(config, Box::new(backend)).map_err(|e| e.to_string())?;
            (sim, Some(io))
        }
    };
    if run.trace_out.is_some() || run.epoch_report || run.chrome_trace.is_some() {
        sim.memory_mut().attach_recorder(RecorderConfig::default());
    }
    if run.profile_out.is_some() {
        sim.memory_mut().attach_profiler();
    }
    if run.metrics_out.is_some() || run.chrome_trace.is_some() {
        sim.memory_mut().attach_metrics(MetricsConfig {
            interval: run.metrics_interval,
            ..MetricsConfig::default()
        });
    }
    if run.flight {
        sim.memory_mut()
            .attach_flight(ccnvm::obs::flight::FlightConfig::default());
    }
    if run.wear_out.is_some() || run.chrome_trace.is_some() {
        sim.memory_mut().attach_wear();
        sim.memory_mut().attach_lag();
        if std::env::var_os("CCNVM_WEAR_SELFTEST").is_some() {
            // Deliberately skew the ledger's attribution before the
            // workload so the conservation check's negative path
            // (violation -> report -> nonzero exit under strict) is
            // exercised end-to-end.
            sim.memory_mut().inject_wear_attribution_desync();
        }
    }
    if let Some(mode) = run.audit {
        sim.memory_mut().attach_auditor(mode);
        if std::env::var_os("CCNVM_AUDIT_SELFTEST").is_some() {
            // Deliberately desynchronize the dirty address queue before
            // the workload so the negative path (violation -> report ->
            // nonzero exit under strict) is exercised end-to-end.
            let t = sim
                .memory_mut()
                .inject_dirty_queue_desync(0)
                .map_err(|e| e.to_string())?;
            sim.memory_mut().audit_now(t);
        }
    }
    drive(&mut sim, run)?;
    Ok((sim, io))
}

/// Prints the file backend's I/O tallies (status stream, so stdout
/// stays machine-parseable under `--csv`).
fn report_file_io(run: &RunArgs, io: Option<&Arc<FileIoCounters>>) {
    let (BackendChoice::File(dir), Some(io)) = (&run.backend, io) else {
        return;
    };
    let s = io.stats();
    eprintln!(
        "file backend {dir} ({}): {} records appended, {} fsyncs, \
         {} compactions, {} bytes written",
        run.fsync, s.appends, s.fsyncs, s.compactions, s.bytes_written
    );
}

/// Writes `--trace-out` and prints `--epoch-report`, when requested.
///
/// The trace file goes out as CSV when the path ends in `.csv`,
/// JSON lines otherwise. Status goes to stderr so stdout stays
/// machine-parseable under `--csv`.
fn emit_observability(run: &RunArgs, sim: &Simulator) -> Result<(), String> {
    let Some(rec) = sim.memory().recorder() else {
        return Ok(());
    };
    if let Some(path) = &run.trace_out {
        let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut out = BufWriter::new(file);
        if path.ends_with(".csv") {
            rec.write_csv(&mut out)
        } else {
            rec.write_jsonl(&mut out)
        }
        .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote {} events to {path} ({} dropped at capacity {})",
            rec.trace().len(),
            rec.trace().dropped(),
            rec.trace().capacity()
        );
    }
    if run.epoch_report {
        println!("{}", rec.epoch_report());
    }
    Ok(())
}

/// Writes `--profile-out` (and prints the stage table unless `--csv`),
/// when requested. A recovery report, if given, is folded in so the
/// profile carries the recovery-domain stages too.
fn emit_profile(
    run: &RunArgs,
    sim: &Simulator,
    recovery: Option<&RecoveryReport>,
) -> Result<(), String> {
    let Some(path) = &run.profile_out else {
        return Ok(());
    };
    let mut prof = sim
        .memory()
        .profiler()
        .cloned()
        .expect("profiler is attached whenever --profile-out is set");
    if let Some(report) = recovery {
        prof.absorb_recovery(report);
    }
    let json = prof.to_json(cli_name(run.design), &run.bench, run.instructions);
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    if !run.csv {
        println!("{}", prof.render_table());
    }
    eprintln!("wrote stage profile to {path}");
    Ok(())
}

/// Creates the `--chrome-trace` output file up front, before the
/// (potentially long) simulation, so an unwritable path fails fast.
fn create_chrome_file(run: &RunArgs) -> Result<Option<File>, String> {
    run.chrome_trace
        .as_ref()
        .map(|path| File::create(path).map_err(|e| format!("{path}: {e}")))
        .transpose()
}

/// Writes `--metrics-out`, when requested. CSV when the path ends in
/// `.csv`, JSON lines otherwise; status goes to stderr.
fn emit_metrics(run: &RunArgs, sim: &Simulator) -> Result<(), String> {
    let Some(path) = &run.metrics_out else {
        return Ok(());
    };
    let m = sim
        .memory()
        .metrics()
        .expect("metrics are attached whenever --metrics-out is set");
    let file = File::create(path).map_err(|e| format!("{path}: {e}"))?;
    let mut out = BufWriter::new(file);
    if path.ends_with(".csv") {
        m.write_csv(&mut out)
    } else {
        m.write_jsonl(&mut out)
    }
    .map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote {} metrics samples to {path} ({} dropped, interval {} cycles)",
        m.len(),
        m.dropped(),
        m.interval()
    );
    Ok(())
}

/// Renders the run as a Chrome trace-event file into the handle opened
/// by [`create_chrome_file`].
fn emit_chrome(
    run: &RunArgs,
    sim: &Simulator,
    recovery: Option<&RecoveryReport>,
    file: Option<File>,
) -> Result<(), String> {
    let (Some(path), Some(file)) = (&run.chrome_trace, file) else {
        return Ok(());
    };
    let mem = sim.memory();
    let input = ChromeTraceInput {
        recorder: mem.recorder(),
        metrics: mem.metrics(),
        profile: mem.profiler(),
        recovery: recovery.map(|r| r.timeline.as_slice()),
        lag: mem.lag(),
    };
    let mut out = BufWriter::new(file);
    write_chrome_trace(&mut out, &input).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote Chrome trace to {path} (load it at https://ui.perfetto.dev)");
    Ok(())
}

/// Writes `--wear-out`: the `ccnvm-wear/1` write-provenance, per-line
/// wear and durability-lag report (and prints the rendered table
/// unless `--csv`).
fn emit_wear(run: &RunArgs, sim: &Simulator) -> Result<(), String> {
    let Some(path) = &run.wear_out else {
        return Ok(());
    };
    let report = sim
        .memory()
        .wear_report(&run.bench, sim.instructions())
        .expect("the wear ledger is attached whenever --wear-out is set");
    std::fs::write(path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
    if !run.csv {
        print!("{}", ccnvm::obs::wear::render_report(&report));
    }
    eprintln!(
        "wrote wear report ({}) to {path}",
        ccnvm::obs::wear::WEAR_SCHEMA
    );
    Ok(())
}

/// Per-shard `--wear-out` files (shards are independent devices, so
/// wear is reported per shard, never merged).
fn emit_wear_sharded(run: &RunArgs, router: &ShardRouter) -> Result<(), String> {
    let Some(path) = &run.wear_out else {
        return Ok(());
    };
    for (i, sim) in router.shards().iter().enumerate() {
        let report = sim
            .memory()
            .wear_report(&run.bench, sim.instructions())
            .expect("wear ledgers are attached whenever --wear-out is set");
        let path = shard_path(path, i);
        std::fs::write(&path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
        if !run.csv {
            println!("=== shard {i} wear report ===");
            print!("{}", ccnvm::obs::wear::render_report(&report));
        }
        eprintln!(
            "wrote wear report ({}) to {path}",
            ccnvm::obs::wear::WEAR_SCHEMA
        );
    }
    Ok(())
}

/// Prints the auditor's verdict; a strict-mode auditor that latched a
/// violation turns into a nonzero exit.
fn audit_verdict(sim: &Simulator) -> Result<(), String> {
    let Some(aud) = sim.memory().auditor() else {
        return Ok(());
    };
    if aud.violations().is_empty() {
        eprintln!("audit: clean ({} checkpoints)", aud.checks_run());
        return Ok(());
    }
    eprint!("{}", aud.report());
    if aud.failed() {
        Err(format!(
            "audit: {} invariant violation(s) under strict mode",
            aud.violations().len()
        ))
    } else {
        Ok(())
    }
}

/// Inserts `.shardN` before the path's extension (or appends it), so
/// per-shard artifacts of one run sit next to each other.
fn shard_path(path: &str, shard: usize) -> String {
    match path.rfind('.') {
        Some(dot) if dot > 0 && !path[dot..].contains('/') => {
            format!("{}.shard{shard}{}", &path[..dot], &path[dot..])
        }
        _ => format!("{path}.shard{shard}"),
    }
}

/// Builds, instruments and runs the sharded service for `--shards N`.
fn simulate_sharded(run: &RunArgs) -> Result<ShardRouter, String> {
    if let BackendChoice::File(dir) = &run.backend {
        return Err(format!(
            "--backend file:{dir} is a single-owner store; it cannot be \
             combined with --shards {} (each shard owns a slice of one \
             durable image — run the shards against separate directories \
             or use --backend mem)",
            run.shards
        ));
    }
    let config = config_of(run)?;
    let mut router = ShardRouter::new(config, run.shards).map_err(|e| e.to_string())?;
    if run.trace_out.is_some() || run.epoch_report || run.chrome_trace.is_some() {
        router.attach_recorders(RecorderConfig::default());
    }
    if run.profile_out.is_some() {
        router.attach_profilers();
    }
    if run.metrics_out.is_some() || run.chrome_trace.is_some() {
        router.attach_metrics(MetricsConfig {
            interval: run.metrics_interval,
            ..MetricsConfig::default()
        });
    }
    if run.flight {
        router.attach_flight_recorders(ccnvm::obs::flight::FlightConfig::default());
    }
    if run.wear_out.is_some() || run.chrome_trace.is_some() {
        router.attach_wear_ledgers();
        router.attach_lag_tracers();
        if std::env::var_os("CCNVM_WEAR_SELFTEST").is_some() {
            // Shard 0 takes the injected skew, as with the audit
            // selftest.
            router
                .shard_mut(0)
                .memory_mut()
                .inject_wear_attribution_desync();
        }
    }
    if let Some(mode) = run.audit {
        router.attach_auditors(mode);
        if std::env::var_os("CCNVM_AUDIT_SELFTEST").is_some() {
            // Same negative-path exercise as the single-owner service;
            // shard 0 takes the injected desync.
            let mem = router.shard_mut(0).memory_mut();
            let t = mem
                .inject_dirty_queue_desync(0)
                .map_err(|e| e.to_string())?;
            router.shard_mut(0).memory_mut().audit_now(t);
        }
    }
    if let Some(path) = &run.trace {
        let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let ops = ccnvm_trace::text::read_trace(BufReader::new(file))
            .map_err(|e| format!("{path}: {e}"))?;
        if ops.is_empty() {
            return Err(format!("{path}: trace is empty"));
        }
        while router.total_instructions() < run.instructions && !router.audit_failed() {
            router
                .run(
                    ops.iter().copied(),
                    run.instructions - router.total_instructions(),
                )
                .map_err(|e| e.to_string())?;
        }
    } else {
        let profile = profiles::by_name(&run.bench)
            .ok_or_else(|| format!("unknown benchmark {:?} (try `list`)", run.bench))?;
        let trace = TraceGenerator::new(profile, run.seed);
        router
            .run(trace, run.instructions)
            .map_err(|e| e.to_string())?;
    }
    Ok(router)
}

/// Per-shard `--trace-out` files and `--epoch-report` sections.
fn emit_observability_sharded(run: &RunArgs, router: &ShardRouter) -> Result<(), String> {
    for (i, sim) in router.shards().iter().enumerate() {
        let Some(rec) = sim.memory().recorder() else {
            continue;
        };
        if let Some(path) = &run.trace_out {
            let path = shard_path(path, i);
            let file = File::create(&path).map_err(|e| format!("{path}: {e}"))?;
            let mut out = BufWriter::new(file);
            if path.ends_with(".csv") {
                rec.write_csv(&mut out)
            } else {
                rec.write_jsonl(&mut out)
            }
            .map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {} events to {path} ({} dropped at capacity {})",
                rec.trace().len(),
                rec.trace().dropped(),
                rec.trace().capacity()
            );
        }
        if run.epoch_report {
            println!("=== shard {i} epoch report ===");
            println!("{}", rec.epoch_report());
        }
    }
    Ok(())
}

/// Per-shard `--metrics-out` files.
fn emit_metrics_sharded(run: &RunArgs, router: &ShardRouter) -> Result<(), String> {
    let Some(path) = &run.metrics_out else {
        return Ok(());
    };
    for (i, sim) in router.shards().iter().enumerate() {
        let m = sim
            .memory()
            .metrics()
            .expect("metrics are attached whenever --metrics-out is set");
        let path = shard_path(path, i);
        let file = File::create(&path).map_err(|e| format!("{path}: {e}"))?;
        let mut out = BufWriter::new(file);
        if path.ends_with(".csv") {
            m.write_csv(&mut out)
        } else {
            m.write_jsonl(&mut out)
        }
        .map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote {} metrics samples to {path} ({} dropped, interval {} cycles)",
            m.len(),
            m.dropped(),
            m.interval()
        );
    }
    Ok(())
}

/// One Chrome trace for the whole service: shard `i` renders as
/// process `i + 1` with the standard nine tracks.
fn emit_chrome_sharded(
    run: &RunArgs,
    router: &ShardRouter,
    recoveries: Option<&[RecoveryReport]>,
    file: Option<File>,
) -> Result<(), String> {
    let (Some(path), Some(file)) = (&run.chrome_trace, file) else {
        return Ok(());
    };
    let inputs: Vec<ChromeTraceInput<'_>> = router
        .shards()
        .iter()
        .enumerate()
        .map(|(i, sim)| {
            let mem = sim.memory();
            ChromeTraceInput {
                recorder: mem.recorder(),
                metrics: mem.metrics(),
                profile: mem.profiler(),
                recovery: recoveries.map(|r| r[i].timeline.as_slice()),
                lag: mem.lag(),
            }
        })
        .collect();
    let mut out = BufWriter::new(file);
    write_sharded_chrome_trace(&mut out, &inputs).map_err(|e| format!("{path}: {e}"))?;
    eprintln!(
        "wrote Chrome trace ({} shard processes) to {path} (load it at https://ui.perfetto.dev)",
        inputs.len()
    );
    Ok(())
}

/// `--profile-out` for the service: the stage-wise sum over every
/// shard profiler, with each shard's recovery (if any) folded in.
fn emit_profile_sharded(
    run: &RunArgs,
    router: &ShardRouter,
    recoveries: Option<&[RecoveryReport]>,
) -> Result<(), String> {
    let Some(path) = &run.profile_out else {
        return Ok(());
    };
    let mut prof = router
        .merged_profile()
        .expect("profilers are attached whenever --profile-out is set");
    if let Some(reports) = recoveries {
        for report in reports {
            prof.absorb_recovery(report);
        }
    }
    let json = prof.to_json(cli_name(run.design), &run.bench, run.instructions);
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    if !run.csv {
        println!("{}", prof.render_table());
    }
    eprintln!(
        "wrote merged stage profile ({} shards) to {path}",
        router.shard_count()
    );
    Ok(())
}

/// Aggregated audit verdict: every shard's auditor must be clean.
fn audit_verdict_sharded(router: &ShardRouter) -> Result<(), String> {
    let mut failing = 0usize;
    for (i, sim) in router.shards().iter().enumerate() {
        let Some(aud) = sim.memory().auditor() else {
            continue;
        };
        if aud.violations().is_empty() {
            eprintln!("audit shard {i}: clean ({} checkpoints)", aud.checks_run());
        } else {
            eprintln!("audit shard {i}:");
            eprint!("{}", aud.report());
            if aud.failed() {
                failing += 1;
            }
        }
    }
    if failing > 0 {
        Err(format!(
            "audit: invariant violations on {failing} shard(s) under strict mode"
        ))
    } else {
        Ok(())
    }
}

fn cmd_run_sharded(run: &RunArgs) -> Result<(), String> {
    let chrome_file = create_chrome_file(run)?;
    let router = simulate_sharded(run)?;
    let stats = router.stats();
    if run.csv {
        println!("design,bench,{}", RunStats::csv_header());
        println!("{},{},{}", cli_name(run.design), run.bench, stats.csv_row());
    } else {
        println!(
            "{} on {} ({} instructions, seed {}, {} shards):",
            run.design,
            run.bench,
            run.instructions,
            run.seed,
            router.shard_count()
        );
        println!("{stats}");
    }
    // The load-balance view; status-stream under --csv so stdout stays
    // machine-parseable.
    let gauges = render_shard_gauges(&router.shard_gauges());
    if run.csv {
        eprint!("{gauges}");
    } else {
        print!("{gauges}");
    }
    emit_observability_sharded(run, &router)?;
    emit_metrics_sharded(run, &router)?;
    emit_chrome_sharded(run, &router, None, chrome_file)?;
    emit_profile_sharded(run, &router, None)?;
    emit_wear_sharded(run, &router)?;
    audit_verdict_sharded(&router)
}

fn cmd_recover_sharded(run: &RunArgs) -> Result<(), String> {
    let chrome_file = create_chrome_file(run)?;
    let mut router = simulate_sharded(run)?;
    let threads = thread_count(run.threads);
    // Crash scenario: quiesce every shard except the one with the
    // deepest dirty queue, then power-fail with that one mid-drain —
    // staged to the WPQ but never committed.
    let victim = router
        .shard_gauges()
        .iter()
        .max_by_key(|g| g.dirty_queue_depth)
        .map(|g| g.shard as usize)
        .unwrap_or(0);
    let flushed = parallel_for_mut(router.shards_mut(), threads, |i, sim| {
        if i == victim {
            Ok(())
        } else {
            sim.flush_caches().map_err(|e| e.to_string())
        }
    });
    for r in flushed {
        r?;
    }
    router.inject_mid_drain_crash(victim);
    let images = router.crash_images();
    println!(
        "{} on {}: service crashed after {} instructions across {} shards \
         (shard {victim} caught mid-drain)",
        run.design,
        run.bench,
        router.total_instructions(),
        router.shard_count()
    );
    // Shards recover independently — fan the rebuilds out on the same
    // worker pool that quiesced them.
    let reports = parallel_map(&images, threads, |_, image| recover(image));
    for (i, (image, report)) in images.iter().zip(&reports).enumerate() {
        let surface = image.surface();
        println!(
            "shard {i}: {} durable lines, {} staged lines lost, {} counter lines \
             patched ({} retries), roots stored {:?} rebuilt {:?} — {}",
            surface.total_lines(),
            image.staged_lines_lost,
            report.recovered_counter_lines,
            report.total_retries,
            report.stored_root_match,
            report.rebuilt_root_match,
            if report.is_clean() {
                "clean"
            } else {
                "NOT CLEAN"
            }
        );
    }
    emit_observability_sharded(run, &router)?;
    emit_metrics_sharded(run, &router)?;
    emit_chrome_sharded(run, &router, Some(&reports), chrome_file)?;
    emit_profile_sharded(run, &router, Some(&reports))?;
    emit_wear_sharded(run, &router)?;
    audit_verdict_sharded(&router)?;
    if reports.iter().all(RecoveryReport::is_clean) {
        println!(
            "verdict: CLEAN — all {} shards fully recovered",
            router.shard_count()
        );
        Ok(())
    } else if run.design.is_crash_consistent() {
        Err("recovery reported attacks on an attack-free run (bug!)".into())
    } else {
        println!("verdict: UNRECOVERABLE — expected for w/o CC, the motivating deficiency");
        Ok(())
    }
}

fn cmd_run(run: &RunArgs) -> Result<(), String> {
    if run.shards > 1 {
        return cmd_run_sharded(run);
    }
    let chrome_file = create_chrome_file(run)?;
    let (mut sim, io) = simulate(run)?;
    // A clean shutdown pushes buffered commit-log records to disk so
    // the directory reopens to exactly this run's end state.
    sim.memory_mut().sync_durable();
    report_file_io(run, io.as_ref());
    let stats = sim.stats();
    if run.csv {
        println!("design,bench,{}", RunStats::csv_header());
        println!("{},{},{}", cli_name(run.design), run.bench, stats.csv_row());
    } else {
        println!(
            "{} on {} ({} instructions, seed {}):",
            run.design, run.bench, run.instructions, run.seed
        );
        println!("{stats}");
        let wear = sim.memory().wear_stats();
        println!(
            "wear: hottest line {} with {} writes; {} lines written (mean {:.2})",
            wear.hottest_line
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            wear.max_line_writes,
            wear.lines_written,
            wear.mean_line_writes
        );
    }
    emit_observability(run, &sim)?;
    emit_metrics(run, &sim)?;
    emit_chrome(run, &sim, None, chrome_file)?;
    emit_profile(run, &sim, None)?;
    emit_wear(run, &sim)?;
    audit_verdict(&sim)
}

fn cmd_sweep(sweep: &SweepArgs) -> Result<(), String> {
    if sweep.run.csv {
        println!("param,value,design,bench,{}", RunStats::csv_header());
    } else {
        println!(
            "{:<10}{:>12}{:>14}{:>12}{:>14}",
            "value", "IPC", "NVM writes", "epochs", "wb/epoch"
        );
    }
    // Sweep points are independent simulations: fan them out and print
    // the results in sweep order, identical at any thread count.
    let points: Vec<(&'static str, u64, RunArgs)> = sweep
        .values
        .iter()
        .map(|&value| {
            let mut run = sweep.run.clone();
            let name = match sweep.param {
                SweepParam::N => {
                    run.limit_n = value as u32;
                    "n"
                }
                SweepParam::M => {
                    run.queue_m = value as usize;
                    "m"
                }
            };
            // Sweep points are independent stores: each gets its own
            // subdirectory so their logs never interleave.
            if let BackendChoice::File(dir) = &run.backend {
                run.backend = BackendChoice::File(format!("{dir}/{name}{value}"));
            }
            (name, value, run)
        })
        .collect();
    let threads = thread_count(sweep.run.threads);
    let results = parallel_map(&points, threads, |_, (_, _, run)| {
        if run.shards > 1 {
            simulate_sharded(run).map(|router| router.stats())
        } else {
            simulate(run).map(|(mut sim, _)| {
                sim.memory_mut().sync_durable();
                sim.stats()
            })
        }
    });
    for ((name, value, run), stats) in points.iter().zip(results) {
        let stats = stats?;
        if run.csv {
            println!(
                "{},{},{},{},{}",
                name,
                value,
                cli_name(run.design),
                run.bench,
                stats.csv_row()
            );
        } else {
            println!(
                "{:<10}{:>12.4}{:>14}{:>12}{:>14.1}",
                format!("{name}={value}"),
                stats.ipc(),
                stats.total_writes(),
                stats.drains,
                stats.write_backs as f64 / stats.drains.max(1) as f64
            );
        }
    }
    Ok(())
}

fn cmd_recover(run: &RunArgs) -> Result<(), String> {
    if run.shards > 1 {
        return cmd_recover_sharded(run);
    }
    let chrome_file = create_chrome_file(run)?;
    // The re-simulation only reconstructs the pre-crash machine state
    // (TCB registers are battery-backed hardware and survive a crash);
    // it always runs in memory. The durable image under recovery is
    // the file store reopened below, never the re-simulation's writes.
    let mem_run = match &run.backend {
        BackendChoice::File(_) => {
            let mut r = run.clone();
            r.backend = BackendChoice::Mem;
            std::borrow::Cow::Owned(r)
        }
        BackendChoice::Mem => std::borrow::Cow::Borrowed(run),
    };
    let (sim, _io) = simulate(&mem_run)?;
    let mut image = sim.memory().crash_image();
    // The flight sidecar is read before the reopen below so the
    // forensic analysis sees the log exactly as the power cut left it
    // (reopening truncates a torn tail in place).
    let mut flight_raw: Option<(Vec<String>, u64)> = None;
    if let BackendChoice::File(dir) = &run.backend {
        if run.forensics_out.is_some() {
            flight_raw = Some(ccnvm_mem::read_flight_log(dir).map_err(|e| e.to_string())?);
        }
        // A real crash recovery: reopen the directory from disk and
        // recover from what the filesystem actually preserved —
        // records the fsync strategy had not flushed are gone, exactly
        // as after a power cut.
        let reopened = FileBackend::open(dir, backend_cfg(run)).map_err(|e| e.to_string())?;
        let s = reopened.io_counters().stats();
        println!(
            "reopened file store {dir}: {} log records replayed, {} torn/unsynced \
             bytes discarded",
            s.replayed_records, s.discarded_bytes
        );
        image.nvm = reopened.snapshot();
    }
    let report = recover(&image);
    println!(
        "{} on {}: crashed after {} instructions",
        run.design,
        run.bench,
        sim.instructions()
    );
    let surface = image.surface();
    println!(
        "crash image: {} durable lines (data {}, hmac {}, counter {}, tree {}, unknown {})",
        surface.total_lines(),
        surface.data_lines,
        surface.dh_lines,
        surface.counter_lines,
        surface.tree_lines,
        surface.unknown_lines
    );
    if image.staged_lines_lost > 0 {
        println!(
            "note: {} staged lines had not reached the end signal and were \
             lost to the crash (replayed via counter retry)",
            image.staged_lines_lost
        );
    }
    println!(
        "recovery: {} counter lines patched ({} data lines), {} retries \
         (max {} per line, N_wb {})",
        report.recovered_counter_lines,
        report.recovered_data_lines,
        report.total_retries,
        report.max_line_retries,
        report.nwb
    );
    println!(
        "stored tree vs TCB roots: {:?}; rebuilt tree: {:?}; located attacks: {}",
        report.stored_root_match,
        report.rebuilt_root_match,
        report.located.len()
    );
    println!("recovery timeline ({} cycles):", report.recovery_cycles);
    for span in &report.timeline {
        println!(
            "  {:<22} {:>10}..{:<10} ops {:>8}  writes {:>6}",
            span.stage.name(),
            span.start,
            span.end,
            span.ops,
            span.nvm_writes
        );
    }
    // Artifacts go out in every branch so a failed recovery still
    // leaves a trace and profile to debug with.
    emit_observability(run, &sim)?;
    emit_metrics(run, &sim)?;
    emit_chrome(run, &sim, Some(&report), chrome_file)?;
    emit_profile(run, &sim, Some(&report))?;
    emit_wear(run, &sim)?;
    if let Some(path) = &run.forensics_out {
        // File backend: the recovered sidecar. Mem backend: the
        // in-process ring (empty unless --flight was set — a crash
        // would have destroyed it, but recover's mem path never
        // actually dies, so the ring is still readable).
        let (entries, discarded) = flight_raw.unwrap_or_else(|| {
            (
                sim.memory()
                    .flight()
                    .map(|f| f.entries().map(str::to_owned).collect())
                    .unwrap_or_default(),
                0,
            )
        });
        let analysis =
            ccnvm::obs::flight::analyze(&entries).map_err(|e| format!("flight log: {e}"))?;
        let fsync_name = match &run.backend {
            BackendChoice::File(_) => run.fsync.to_string(),
            // The in-memory image has no fsync-loss window.
            BackendChoice::Mem => "always".to_owned(),
        };
        let forensic =
            ccnvm::obs::flight::forensic_report(&image, &report, analysis, discarded, &fsync_name);
        std::fs::write(path, forensic.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote forensic report ({}) to {path}",
            ccnvm::obs::flight::FORENSICS_SCHEMA
        );
    }
    audit_verdict(&sim)?;
    if report.is_clean() {
        println!("verdict: CLEAN — memory fully recovered");
        Ok(())
    } else if matches!(&run.backend, BackendChoice::File(_))
        && run.fsync != ccnvm_mem::FsyncStrategy::Always
    {
        println!(
            "verdict: DURABILITY LOSS — records buffered under fsync={} never \
             reached disk before the crash; recovery detected the loss instead \
             of silently serving stale state (use --fsync always for the \
             ADR-faithful zero-loss mode)",
            run.fsync
        );
        if run.strict {
            return Err(format!(
                "--strict: durability loss under fsync={} is a gated verdict",
                run.fsync
            ));
        }
        Ok(())
    } else if run.design.is_crash_consistent() {
        Err("recovery reported attacks on an attack-free run (bug!)".into())
    } else {
        println!("verdict: UNRECOVERABLE — expected for w/o CC, the motivating deficiency");
        if run.strict {
            return Err("--strict: unrecoverable image is a gated verdict".into());
        }
        Ok(())
    }
}

/// Turns `--kill` into a 1-based boundary index: a number passes
/// through; a label is resolved by a recording pass that replays the
/// workload under `dir/record` (removed afterwards) and takes the
/// label's first crossing.
fn resolve_kill_boundary(
    spec: &str,
    config: &SimConfig,
    run: &RunArgs,
    dir: &std::path::Path,
    cfg: FileBackendConfig,
) -> Result<u64, String> {
    if let Ok(k) = spec.replace('_', "").parse::<u64>() {
        if k == 0 {
            return Err("--kill: boundaries are 1-based".into());
        }
        return Ok(k);
    }
    let record_dir = dir.join("record");
    let backend = FileBackend::open(&record_dir, cfg).map_err(|e| e.to_string())?;
    if !backend.is_empty() {
        return Err(format!(
            "record directory {} already holds {} lines from a previous run; \
             point --backend file: at a new (or emptied) directory",
            record_dir.display(),
            backend.len()
        ));
    }
    let mut sim =
        Simulator::with_backend(config.clone(), Box::new(backend)).map_err(|e| e.to_string())?;
    let (res, labels) =
        crashpoint::record(|| drive(&mut sim, run).map(|()| sim.memory_mut().sync_durable()));
    drop(sim);
    std::fs::remove_dir_all(&record_dir).ok();
    res?;
    match labels.iter().position(|l| l == spec) {
        Some(p) => {
            eprintln!(
                "recording pass: {} boundaries crossed; first {spec:?} crossing is #{}",
                labels.len(),
                p + 1
            );
            Ok(p as u64 + 1)
        }
        None => {
            let mut seen: Vec<&str> = Vec::new();
            for l in &labels {
                if !seen.contains(&l.as_str()) {
                    seen.push(l);
                }
            }
            Err(format!(
                "--kill {spec:?}: the workload never crossed that boundary (crossed: {})",
                if seen.is_empty() {
                    "none".to_owned()
                } else {
                    seen.join(", ")
                }
            ))
        }
    }
}

/// `forensics`: run the workload with the flight recorder writing the
/// durable sidecar, optionally kill the run at a persist boundary,
/// recover the directory from disk and print the forensic report.
fn cmd_forensics(run: &RunArgs) -> Result<(), String> {
    let BackendChoice::File(dir) = &run.backend else {
        return Err(
            "forensics needs --backend file:<dir> — the flight sidecar and the \
             crash image it explains both live on disk"
                .into(),
        );
    };
    if run.shards > 1 {
        return Err(format!(
            "forensics is a single-owner command; it cannot be combined with \
             --shards {}",
            run.shards
        ));
    }
    let config = config_of(run)?;
    let mut flight_run = run.clone();
    flight_run.flight = true;
    let cfg = backend_cfg(&flight_run);
    let dir = std::path::Path::new(dir);

    // A kill replays the workload in a subdirectory so the recording
    // pass and the crashed run never share a log.
    let (run_dir, kill_target) = match &run.kill {
        None => (dir.to_path_buf(), None),
        Some(spec) => {
            let k = resolve_kill_boundary(spec, &config, run, dir, cfg)?;
            (dir.join("crashed"), Some(k))
        }
    };

    let backend = FileBackend::open(&run_dir, cfg).map_err(|e| e.to_string())?;
    if !backend.is_empty() {
        return Err(format!(
            "file store {} already holds {} lines from a previous run; point \
             --backend file: at a new (or emptied) directory",
            run_dir.display(),
            backend.len()
        ));
    }
    let mut sim =
        Simulator::with_backend(config.clone(), Box::new(backend)).map_err(|e| e.to_string())?;
    sim.memory_mut()
        .attach_flight(ccnvm::obs::flight::FlightConfig::default());
    let armed_label = match kill_target {
        None => {
            drive(&mut sim, run)?;
            sim.memory_mut().sync_durable();
            None
        }
        Some(k) => {
            let killed = crashpoint::kill_at(k, || {
                drive(&mut sim, run).map(|()| sim.memory_mut().sync_durable())
            });
            match killed {
                Err(sig) => {
                    println!(
                        "killed at persist boundary #{} ({})",
                        sig.boundary, sig.label
                    );
                    Some(sig.label)
                }
                Ok(res) => {
                    res?;
                    return Err(format!(
                        "the workload completed without reaching boundary #{k} — \
                         nothing to kill (lower --kill or raise --instructions)"
                    ));
                }
            }
        }
    };
    // TCB registers are battery-backed hardware state; they survive
    // the power cut exactly as they were at the kill instant.
    let tcb = sim.memory().tcb().clone();
    // Dropping the simulator drops the backend: unsynced bytes are
    // lost, file handles close — the power cut (a no-op for the
    // completed, synced run).
    drop(sim);

    // Forensics reads the sidecar before the reopen truncates a torn
    // tail in place.
    let (entries, discarded) = ccnvm_mem::read_flight_log(&run_dir).map_err(|e| e.to_string())?;
    let reopened = FileBackend::open(&run_dir, cfg).map_err(|e| e.to_string())?;
    let s = reopened.io_counters().stats();
    println!(
        "reopened file store {}: {} log records replayed, {} torn/unsynced \
         bytes discarded",
        run_dir.display(),
        s.replayed_records,
        s.discarded_bytes
    );
    let image = CrashImage {
        design: run.design,
        capacity_bytes: config.capacity_bytes,
        update_limit: config.update_limit,
        tcb,
        nvm: reopened.snapshot(),
        // Staged-but-uncommitted lines never reached the durable log;
        // recovery re-derives them, and the flight log's open
        // drain-stage bracket (not this count) attributes them.
        staged_lines_lost: 0,
    };
    drop(reopened);
    let recovery = recover(&image);
    let analysis = ccnvm::obs::flight::analyze(&entries).map_err(|e| format!("flight log: {e}"))?;
    let forensic = ccnvm::obs::flight::forensic_report(
        &image,
        &recovery,
        analysis,
        discarded,
        &run.fsync.to_string(),
    );
    println!("{forensic}");
    let cause_ok = match &armed_label {
        Some(label) => forensic.flight.inferred_cause.as_deref() == Some(label.as_str()),
        None => forensic.flight.inferred_cause.is_none(),
    };
    match (&armed_label, &forensic.flight.inferred_cause) {
        (Some(label), _) if cause_ok => {
            println!("cause attribution: inferred cause matches the armed kill ({label})");
        }
        (Some(label), inferred) => println!(
            "cause attribution: MISMATCH — armed {label}, inferred {}",
            inferred.as_deref().unwrap_or("(quiescent)")
        ),
        (None, None) => {
            println!("cause attribution: quiescent log, as a completed run must leave");
        }
        (None, Some(inferred)) => {
            println!("cause attribution: UNEXPECTED open boundary {inferred} after a completed run")
        }
    }
    if let Some(path) = &run.forensics_out {
        std::fs::write(path, forensic.to_json()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote forensic report ({}) to {path}",
            ccnvm::obs::flight::FORENSICS_SCHEMA
        );
    }
    if run.strict {
        let mut problems = Vec::new();
        if !cause_ok {
            problems.push("cause attribution mismatched".to_owned());
        }
        if !forensic.staged_attribution_consistent() {
            problems.push("staged-line attribution inconsistent".to_owned());
        }
        if !forensic.clean && run.design.is_crash_consistent() {
            problems.push(format!("gated verdict {}", forensic.verdict()));
        }
        if !problems.is_empty() {
            return Err(format!("--strict: {}", problems.join("; ")));
        }
    }
    Ok(())
}

fn cmd_report(args: &ReportArgs) -> Result<(), String> {
    let mut dropped_samples = 0u64;
    if let Some(path) = &args.metrics {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let (samples, footer) = ccnvm::obs::metrics::parse_metrics_with_footer(&text)
            .map_err(|e| format!("{path}: {e}"))?;
        println!("{path}:");
        print!("{}", ccnvm::obs::metrics::render_summary(&samples));
        if let Some(f) = footer {
            if f.dropped > 0 {
                dropped_samples = f.dropped;
                eprintln!(
                    "warning: {path}: the export's footer records {} dropped sample(s) \
                     at capacity — the summary above understates the run (re-export \
                     with a coarser --metrics-interval or a larger registry capacity)",
                    f.dropped
                );
            }
        }
    }
    if let Some(path) = &args.wear {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let report = ccnvm::obs::wear::parse_wear(&text).map_err(|e| format!("{path}: {e}"))?;
        println!("{path}:");
        print!("{}", ccnvm::obs::wear::render_report(&report));
        if !report.conserved() {
            return Err(format!(
                "{path}: wear ledger attributes {} writes but the controller \
                 counted {} — the export violates write conservation",
                report.attributed_writes, report.total_writes
            ));
        }
    }
    let strict_drops_gate = |dropped: u64| -> Result<(), String> {
        if args.strict_drops && dropped > 0 {
            Err(format!(
                "--strict-drops: the metrics export dropped {dropped} sample(s)"
            ))
        } else {
            Ok(())
        }
    };
    let Some((path_a, path_b)) = &args.compare else {
        return strict_drops_gate(dropped_samples);
    };
    let read = |path: &str| {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_profile(&text).map_err(|e| format!("{path}: {e}"))
    };
    let a = read(path_a)?;
    let b = read(path_b)?;
    let diff = compare(&a, &b, args.tolerance);
    println!(
        "comparing {} (baseline, {} on {}) vs {} (candidate, {} on {}):",
        path_a, a.design, a.bench, path_b, b.design, b.bench
    );
    print!("{}", diff.render());
    if diff.has_regressions() {
        Err(format!(
            "{} stage(s) regressed beyond {}% tolerance",
            diff.regressions(),
            args.tolerance
        ))
    } else {
        strict_drops_gate(dropped_samples)
    }
}

#[cfg(test)]
mod sweep_tests {
    use super::*;

    /// The parallel sweep must produce the same per-point stats as
    /// serial simulation, whatever the worker count.
    #[test]
    fn parallel_sweep_matches_serial() {
        let base = RunArgs {
            instructions: 20_000,
            ..RunArgs::default()
        };
        let sweep = SweepArgs {
            run: base.clone(),
            param: SweepParam::N,
            values: vec![4, 16, 64],
        };
        let points: Vec<RunArgs> = sweep
            .values
            .iter()
            .map(|&v| {
                let mut r = base.clone();
                r.limit_n = v as u32;
                r
            })
            .collect();
        let serial: Vec<RunStats> = points
            .iter()
            .map(|r| simulate(r).unwrap().0.stats())
            .collect();
        let parallel =
            ccnvm_bench::parallel::parallel_map(&points, 3, |_, r| simulate(r).unwrap().0.stats());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.csv_row(), p.csv_row());
        }
    }
}
