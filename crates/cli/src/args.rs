//! A small, dependency-free argument parser for `ccnvm-sim`.
//!
//! Grammar:
//!
//! ```text
//! ccnvm-sim run     [--design D] [--bench B | --trace FILE] [--instructions N]
//!                   [--seed S] [--limit-n N] [--queue-m M] [--split-meta] [--csv]
//!                   [--threads T]
//! ccnvm-sim sweep   --param {n|m} --values a,b,c [run options]
//! ccnvm-sim recover [run options]                 # run, crash, recover, report
//! ccnvm-sim forensics --backend file:DIR [--kill LABEL] [run options]
//! ccnvm-sim report  --compare A.json B.json [--tolerance PCT]
//! ccnvm-sim list    # available designs and benchmarks
//! ```

use ccnvm::config::DesignKind;
use ccnvm::obs::audit::AuditMode;
use ccnvm_crypto::CryptoSelect;
use ccnvm_mem::FsyncStrategy;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run one simulation.
    Run(RunArgs),
    /// Sweep one epoch-trigger parameter.
    Sweep(SweepArgs),
    /// Run, crash at the end, recover and report.
    Recover(RunArgs),
    /// Run with the flight recorder on, optionally kill at a persist
    /// boundary, recover from disk and emit a forensic report.
    Forensics(RunArgs),
    /// Compare two saved stage profiles.
    Report(ReportArgs),
    /// List designs and benchmarks.
    List,
    /// Print usage.
    Help,
}

/// Options shared by `run` / `recover` / `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Design to simulate.
    pub design: DesignKind,
    /// Synthetic benchmark name (ignored when `trace` is given).
    pub bench: String,
    /// Path to a text-format trace to replay instead of a profile.
    pub trace: Option<String>,
    /// Instruction budget.
    pub instructions: u64,
    /// Workload seed.
    pub seed: u64,
    /// Update-times limit N.
    pub limit_n: u32,
    /// Dirty address queue entries M.
    pub queue_m: usize,
    /// Use the split counter/tree meta-cache organization.
    pub split_meta: bool,
    /// Emit CSV instead of human-readable output.
    pub csv: bool,
    /// Write the observability event trace to this path (`.csv`
    /// extension selects CSV, anything else JSON lines).
    pub trace_out: Option<String>,
    /// Print the per-epoch rollup report after the run.
    pub epoch_report: bool,
    /// Write the per-stage attribution profile (JSON) to this path.
    pub profile_out: Option<String>,
    /// Write the time-series metrics export to this path (`.csv`
    /// extension selects CSV, anything else JSON lines).
    pub metrics_out: Option<String>,
    /// Simulated cycles between metrics samples (must be positive).
    pub metrics_interval: u64,
    /// Write a Chrome trace-event (Perfetto-loadable) JSON rendering
    /// of the run to this path.
    pub chrome_trace: Option<String>,
    /// Write the `ccnvm-wear/1` write-provenance / wear / durability-lag
    /// report to this path (per-shard files under `--shards N`).
    pub wear_out: Option<String>,
    /// Attach the invariant auditor in this mode (`record` keeps
    /// going, `strict` fails fast with a nonzero exit).
    pub audit: Option<AuditMode>,
    /// Worker threads for multi-point commands (`sweep`). `None`
    /// falls back to `CCNVM_BENCH_THREADS`, then to the machine's
    /// available parallelism.
    pub threads: Option<usize>,
    /// Independent secure-memory shards behind the request router.
    /// `1` is the degenerate single-owner service with byte-identical
    /// output to the pre-sharding paths.
    pub shards: u32,
    /// Where durable lines live (`--backend mem | file:<dir>`).
    pub backend: BackendChoice,
    /// Flush/fsync policy for the file backend (`--fsync always |
    /// batch:<n> | interval:<cycles>`). Ignored for `mem`.
    pub fsync: FsyncStrategy,
    /// Crypto implementation tier (`--crypto auto | portable | simd`).
    /// Bit-identical output across tiers; only wall-clock speed
    /// changes. Defers to `CCNVM_CRYPTO` when the flag is absent.
    pub crypto: CryptoSelect,
    /// Attach the flight recorder: an in-process ring of recent flight
    /// entries, mirrored into the file backend's durable `flight.log`
    /// sidecar when `--backend file:` is in use. `forensics` forces
    /// this on.
    pub flight: bool,
    /// Write the `ccnvm-forensics/1` JSON report to this path
    /// (`recover` / `forensics` only).
    pub forensics_out: Option<String>,
    /// Exit nonzero on any non-clean recovery verdict — including
    /// `DURABILITY LOSS`, which the default exit treats as expected
    /// under a relaxed fsync strategy (`recover` / `forensics` only).
    pub strict: bool,
    /// Persist boundary to kill the run at: a label (first crossing)
    /// or a 1-based boundary index (`forensics` only).
    pub kill: Option<String>,
}

/// The durable store behind the secure memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendChoice {
    /// The in-memory line store (the default; byte-identical goldens).
    Mem,
    /// The file-backed commit log + manifest rooted at this directory.
    File(String),
}

impl Default for RunArgs {
    fn default() -> Self {
        Self {
            design: DesignKind::CcNvm,
            bench: "mixed".to_owned(),
            trace: None,
            instructions: 1_000_000,
            seed: 42,
            limit_n: 16,
            queue_m: 64,
            split_meta: false,
            csv: false,
            trace_out: None,
            epoch_report: false,
            profile_out: None,
            metrics_out: None,
            metrics_interval: ccnvm::obs::metrics::DEFAULT_INTERVAL,
            chrome_trace: None,
            wear_out: None,
            audit: None,
            threads: None,
            shards: 1,
            backend: BackendChoice::Mem,
            fsync: FsyncStrategy::Always,
            crypto: CryptoSelect::Auto,
            flight: false,
            forensics_out: None,
            strict: false,
            kill: None,
        }
    }
}

/// `report` subcommand options. At least one of `compare` / `metrics`
/// / `wear` is set (the parser enforces it); combinations are fine.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportArgs {
    /// Stage-profile diff: `(baseline, candidate)` paths from
    /// `--compare A B`.
    pub compare: Option<(String, String)>,
    /// Metrics time-series export to summarize (`--metrics FILE`).
    pub metrics: Option<String>,
    /// Wear report (`ccnvm-wear/1`) to render (`--wear FILE`).
    pub wear: Option<String>,
    /// Per-stage growth tolerance in percent before a stage is flagged
    /// as a regression.
    pub tolerance: f64,
    /// Exit nonzero when the metrics export's footer records dropped
    /// samples (the summary silently understated the run otherwise).
    pub strict_drops: bool,
}

/// `sweep` subcommand options.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Common run options.
    pub run: RunArgs,
    /// Which parameter to sweep.
    pub param: SweepParam,
    /// The values to sweep over.
    pub values: Vec<u64>,
}

/// The sweepable epoch-trigger parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Update-times limit N.
    N,
    /// Dirty address queue entries M.
    M,
}

/// Error from argument parsing, with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// Usage text.
pub const USAGE: &str = "\
ccnvm-sim — drive the cc-NVM secure-NVM simulator

USAGE:
  ccnvm-sim run     [OPTIONS]          run one simulation
  ccnvm-sim sweep   --param {n|m} --values A,B,C [OPTIONS]
  ccnvm-sim recover [OPTIONS]          run, crash, recover, report
  ccnvm-sim forensics --backend file:DIR [--kill LABEL] [OPTIONS]
                                       run with the flight recorder, kill at
                                       a persist boundary, recover from disk
                                       and print the forensic report
  ccnvm-sim report  --compare A.json B.json [--tolerance PCT]
  ccnvm-sim list                       list designs and benchmarks

OPTIONS:
  --design D          wo-cc | sc | osiris-plus | ccnvm-no-ds | ccnvm   [ccnvm]
  --bench B           synthetic benchmark name                         [mixed]
  --trace FILE        replay a text-format trace instead of a profile
  --instructions N    instruction budget                               [1000000]
  --seed S            workload seed                                    [42]
  --limit-n N         update-times drain/stop-loss limit               [16]
  --queue-m M         dirty address queue entries                      [64]
  --split-meta        split counter/tree meta cache (default shared)
  --csv               machine-readable CSV output
  --trace-out FILE    write the event trace (.csv => CSV, else JSON lines)
  --epoch-report      print the per-epoch rollup report after the run
  --profile-out FILE  write the per-stage attribution profile (JSON)
  --metrics-out FILE  write time-series metrics (.csv => CSV, else JSON lines)
  --metrics-interval C  simulated cycles between metrics samples     [1000]
  --chrome-trace FILE write a Chrome trace-event JSON (load in Perfetto)
  --wear-out FILE     write the ccnvm-wear/1 write-provenance, per-line
                      wear and durability-lag report (per-shard files
                      under --shards N)
  --audit MODE        attach the invariant auditor: record | strict
  --threads T         worker threads for sweep points and shards [all cores]
  --shards N          independent secure-memory shards behind the
                      request router (1 = single-owner service)       [1]
  --backend B         durable store: mem | file:<dir>                 [mem]
                      (file: persists through a commit log + manifest in
                      <dir>; recover reopens it from disk; not combinable
                      with --shards > 1)
  --fsync S           file-backend flush policy:
                      always | batch:<n> | interval:<cycles>          [always]
  --crypto T          crypto tier: auto | portable | simd             [auto]
                      (bit-identical output; simd errors out when the
                      build/host has no hardware path; falls back to the
                      CCNVM_CRYPTO env var when the flag is absent)
  --flight            attach the flight recorder (with --backend file: the
                      entries also persist to the flight.log sidecar)

RECOVER / FORENSICS OPTIONS:
  --forensics-out FILE  write the ccnvm-forensics/1 JSON report
  --strict            exit nonzero on any non-clean recovery verdict,
                      including DURABILITY LOSS
  --kill B            (forensics) kill the run at persist boundary B: a
                      label (wpq-retire, drain-stage, root-alternate,
                      nwb-update, manifest-swap; first crossing) or a
                      1-based boundary index

REPORT OPTIONS:
  --compare A B       the two profile JSON files to diff (baseline, candidate)
  --metrics FILE      summarize a metrics time-series export
                      (min/mean/p50/p99/p999/max)
  --wear FILE         render a ccnvm-wear/1 report written by --wear-out
  --tolerance PCT     per-stage growth allowed before flagging      [5]
  --strict-drops      exit nonzero when the metrics footer records
                      dropped samples
";

fn take_value<'a, I: Iterator<Item = &'a str>>(
    flag: &str,
    iter: &mut I,
) -> Result<&'a str, ParseArgsError> {
    iter.next()
        .ok_or_else(|| ParseArgsError(format!("{flag} needs a value")))
}

fn parse_common<'a, I: Iterator<Item = &'a str>>(
    args: &mut RunArgs,
    flag: &str,
    iter: &mut I,
) -> Result<bool, ParseArgsError> {
    match flag {
        "--design" => {
            let v = take_value(flag, iter)?;
            args.design = v
                .parse()
                .map_err(|e| ParseArgsError(format!("--design: {e}")))?;
        }
        "--bench" => args.bench = take_value(flag, iter)?.to_owned(),
        "--trace" => args.trace = Some(take_value(flag, iter)?.to_owned()),
        "--instructions" => {
            args.instructions = parse_number(flag, take_value(flag, iter)?)?;
        }
        "--seed" => args.seed = parse_number(flag, take_value(flag, iter)?)?,
        "--limit-n" => {
            args.limit_n = parse_number(flag, take_value(flag, iter)?)? as u32;
        }
        "--queue-m" => {
            args.queue_m = parse_number(flag, take_value(flag, iter)?)? as usize;
        }
        "--split-meta" => args.split_meta = true,
        "--csv" => args.csv = true,
        "--trace-out" => args.trace_out = Some(take_value(flag, iter)?.to_owned()),
        "--epoch-report" => args.epoch_report = true,
        "--profile-out" => args.profile_out = Some(take_value(flag, iter)?.to_owned()),
        "--metrics-out" => args.metrics_out = Some(take_value(flag, iter)?.to_owned()),
        "--metrics-interval" => {
            let n = parse_number(flag, take_value(flag, iter)?)?;
            if n == 0 {
                return Err(ParseArgsError(
                    "--metrics-interval must be a positive cycle count".into(),
                ));
            }
            args.metrics_interval = n;
        }
        "--chrome-trace" => args.chrome_trace = Some(take_value(flag, iter)?.to_owned()),
        "--wear-out" => args.wear_out = Some(take_value(flag, iter)?.to_owned()),
        "--audit" => {
            args.audit = Some(match take_value(flag, iter)? {
                "record" => AuditMode::Record,
                "strict" => AuditMode::Strict,
                other => {
                    return Err(ParseArgsError(format!(
                        "--audit must be record or strict, got {other:?}"
                    )))
                }
            });
        }
        "--threads" => {
            let n = parse_number(flag, take_value(flag, iter)?)? as usize;
            if n == 0 {
                return Err(ParseArgsError("--threads must be positive".into()));
            }
            args.threads = Some(n);
        }
        "--shards" => {
            let n = parse_number(flag, take_value(flag, iter)?)? as u32;
            if n == 0 {
                return Err(ParseArgsError("--shards must be positive".into()));
            }
            args.shards = n;
        }
        "--backend" => {
            let v = take_value(flag, iter)?;
            args.backend = if v == "mem" {
                BackendChoice::Mem
            } else if let Some(dir) = v.strip_prefix("file:") {
                if dir.is_empty() {
                    return Err(ParseArgsError(
                        "--backend file: needs a directory, e.g. file:/tmp/ccnvm".into(),
                    ));
                }
                BackendChoice::File(dir.to_owned())
            } else {
                return Err(ParseArgsError(format!(
                    "--backend must be mem or file:<dir>, got {v:?}"
                )));
            };
        }
        "--fsync" => {
            args.fsync = take_value(flag, iter)?
                .parse()
                .map_err(|e| ParseArgsError(format!("--fsync: {e}")))?;
        }
        "--crypto" => {
            args.crypto = take_value(flag, iter)?
                .parse()
                .map_err(|e| ParseArgsError(format!("--crypto: {e}")))?;
        }
        "--flight" => args.flight = true,
        "--forensics-out" => args.forensics_out = Some(take_value(flag, iter)?.to_owned()),
        "--strict" => args.strict = true,
        "--kill" => args.kill = Some(take_value(flag, iter)?.to_owned()),
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_number(flag: &str, v: &str) -> Result<u64, ParseArgsError> {
    v.replace('_', "")
        .parse()
        .map_err(|_| ParseArgsError(format!("{flag}: {v:?} is not a number")))
}

/// Parses the full command line (without the program name).
///
/// # Errors
///
/// Returns a [`ParseArgsError`] describing the first invalid argument.
pub fn parse<S: AsRef<str>>(argv: &[S]) -> Result<Command, ParseArgsError> {
    let mut iter = argv.iter().map(AsRef::as_ref);
    let sub = match iter.next() {
        None => return Ok(Command::Help),
        Some(s) => s,
    };
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "list" => Ok(Command::List),
        "run" | "recover" | "forensics" => {
            let mut args = RunArgs::default();
            while let Some(flag) = iter.next() {
                if !parse_common(&mut args, flag, &mut iter)? {
                    return Err(ParseArgsError(format!("unknown option {flag:?}")));
                }
            }
            if sub != "forensics" && args.kill.is_some() {
                return Err(ParseArgsError(format!(
                    "--kill only applies to the forensics subcommand, not `{sub}`"
                )));
            }
            if sub == "run" {
                if args.forensics_out.is_some() {
                    return Err(ParseArgsError(
                        "--forensics-out needs a recovery to report on — use \
                         `recover` or `forensics`"
                            .into(),
                    ));
                }
                if args.strict {
                    return Err(ParseArgsError(
                        "--strict gates recovery verdicts — use `recover` or `forensics`".into(),
                    ));
                }
            }
            Ok(match sub {
                "run" => Command::Run(args),
                "recover" => Command::Recover(args),
                _ => Command::Forensics(args),
            })
        }
        "report" => {
            let mut compare = None;
            let mut metrics = None;
            let mut wear = None;
            let mut tolerance = 5.0f64;
            let mut strict_drops = false;
            while let Some(flag) = iter.next() {
                match flag {
                    "--strict-drops" => strict_drops = true,
                    "--wear" => wear = Some(take_value(flag, &mut iter)?.to_owned()),
                    "--compare" => {
                        let a = take_value(flag, &mut iter)?.to_owned();
                        let b = iter.next().ok_or_else(|| {
                            ParseArgsError("--compare needs two files: A.json B.json".into())
                        })?;
                        compare = Some((a, b.to_owned()));
                    }
                    "--metrics" => metrics = Some(take_value(flag, &mut iter)?.to_owned()),
                    "--tolerance" => {
                        let v = take_value(flag, &mut iter)?;
                        tolerance = v.parse().map_err(|_| {
                            ParseArgsError(format!("--tolerance: {v:?} is not a number"))
                        })?;
                        if tolerance < 0.0 {
                            return Err(ParseArgsError("--tolerance must be >= 0".into()));
                        }
                    }
                    _ => return Err(ParseArgsError(format!("unknown option {flag:?}"))),
                }
            }
            if compare.is_none() && metrics.is_none() && wear.is_none() {
                return Err(ParseArgsError(
                    "report needs --compare A.json B.json, --metrics FILE and/or \
                     --wear FILE"
                        .into(),
                ));
            }
            Ok(Command::Report(ReportArgs {
                compare,
                metrics,
                wear,
                tolerance,
                strict_drops,
            }))
        }
        "sweep" => {
            let mut args = RunArgs::default();
            let mut param = None;
            let mut values = Vec::new();
            while let Some(flag) = iter.next() {
                match flag {
                    "--param" => {
                        param = Some(match take_value(flag, &mut iter)? {
                            "n" | "N" => SweepParam::N,
                            "m" | "M" => SweepParam::M,
                            other => {
                                return Err(ParseArgsError(format!(
                                    "--param must be n or m, got {other:?}"
                                )))
                            }
                        });
                    }
                    "--values" => {
                        for v in take_value(flag, &mut iter)?.split(',') {
                            values.push(parse_number("--values", v)?);
                        }
                    }
                    _ => {
                        if !parse_common(&mut args, flag, &mut iter)? {
                            return Err(ParseArgsError(format!("unknown option {flag:?}")));
                        }
                    }
                }
            }
            let param = param.ok_or_else(|| ParseArgsError("sweep needs --param {n|m}".into()))?;
            if values.is_empty() {
                return Err(ParseArgsError("sweep needs --values a,b,c".into()));
            }
            Ok(Command::Sweep(SweepArgs {
                run: args,
                param,
                values,
            }))
        }
        other => Err(ParseArgsError(format!(
            "unknown subcommand {other:?} (try `ccnvm-sim help`)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_help() {
        assert_eq!(parse::<&str>(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn run_defaults() {
        let Command::Run(args) = parse(&["run"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args, RunArgs::default());
    }

    #[test]
    fn run_with_options() {
        let Command::Run(args) = parse(&[
            "run",
            "--design",
            "sc",
            "--bench",
            "lbm",
            "--instructions",
            "500_000",
            "--seed",
            "7",
            "--limit-n",
            "32",
            "--queue-m",
            "48",
            "--split-meta",
            "--csv",
            "--trace-out",
            "events.jsonl",
            "--epoch-report",
            "--threads",
            "3",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.design, DesignKind::StrictConsistency);
        assert_eq!(args.bench, "lbm");
        assert_eq!(args.instructions, 500_000);
        assert_eq!(args.seed, 7);
        assert_eq!(args.limit_n, 32);
        assert_eq!(args.queue_m, 48);
        assert!(args.split_meta);
        assert!(args.csv);
        assert_eq!(args.trace_out.as_deref(), Some("events.jsonl"));
        assert!(args.epoch_report);
        assert_eq!(args.threads, Some(3));
    }

    #[test]
    fn crypto_tier_parses_and_rejects_garbage() {
        assert_eq!(RunArgs::default().crypto, CryptoSelect::Auto);
        let Command::Run(args) = parse(&["run", "--crypto", "portable"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.crypto, CryptoSelect::Portable);
        let Command::Recover(args) = parse(&["recover", "--crypto", "simd"]).unwrap() else {
            panic!("expected recover");
        };
        assert_eq!(args.crypto, CryptoSelect::Simd);
        let err = parse(&["run", "--crypto", "avx512"]).unwrap_err();
        assert!(err.to_string().contains("--crypto"));
    }

    #[test]
    fn zero_threads_is_an_error() {
        assert!(parse(&["sweep", "--param", "n", "--values", "1", "--threads", "0"]).is_err());
    }

    #[test]
    fn shards_parse_and_reject_zero() {
        let Command::Run(args) = parse(&["run", "--shards", "4"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.shards, 4);
        assert_eq!(RunArgs::default().shards, 1, "single-owner by default");
        let err = parse(&["run", "--shards", "0"]).unwrap_err();
        assert!(err.to_string().contains("--shards"));
        let Command::Recover(args) = parse(&["recover", "--shards", "2"]).unwrap() else {
            panic!("expected recover");
        };
        assert_eq!(args.shards, 2);
    }

    #[test]
    fn backend_and_fsync_parse() {
        let Command::Run(args) =
            parse(&["run", "--backend", "file:/tmp/x", "--fsync", "batch:8"]).unwrap()
        else {
            panic!("expected run");
        };
        assert_eq!(args.backend, BackendChoice::File("/tmp/x".to_owned()));
        assert_eq!(args.fsync, FsyncStrategy::Batch(8));
        assert_eq!(RunArgs::default().backend, BackendChoice::Mem);
        assert_eq!(RunArgs::default().fsync, FsyncStrategy::Always);

        let Command::Run(args) = parse(&["run", "--backend", "mem"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.backend, BackendChoice::Mem);

        let Command::Recover(args) = parse(&[
            "recover",
            "--backend",
            "file:d",
            "--fsync",
            "interval:50000",
        ])
        .unwrap() else {
            panic!("expected recover");
        };
        assert_eq!(args.backend, BackendChoice::File("d".to_owned()));
        assert_eq!(args.fsync, FsyncStrategy::Interval(50_000));
    }

    #[test]
    fn bad_backend_and_fsync_are_rejected() {
        let err = parse(&["run", "--backend", "floppy"]).unwrap_err();
        assert!(err.to_string().contains("--backend"));
        let err = parse(&["run", "--backend", "file:"]).unwrap_err();
        assert!(err.to_string().contains("directory"));
        let err = parse(&["run", "--fsync", "sometimes"]).unwrap_err();
        assert!(err.to_string().contains("--fsync"));
        let err = parse(&["run", "--fsync", "batch:0"]).unwrap_err();
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn sweep_parses_param_and_values() {
        let Command::Sweep(sw) = parse(&[
            "sweep", "--param", "n", "--values", "4,8,16", "--bench", "mixed",
        ])
        .unwrap() else {
            panic!("expected sweep");
        };
        assert_eq!(sw.param, SweepParam::N);
        assert_eq!(sw.values, vec![4, 8, 16]);
    }

    #[test]
    fn sweep_requires_param_and_values() {
        assert!(parse(&["sweep", "--values", "1"]).is_err());
        assert!(parse(&["sweep", "--param", "n"]).is_err());
        assert!(parse(&["sweep", "--param", "x", "--values", "1"]).is_err());
    }

    #[test]
    fn errors_mention_the_offender() {
        let err = parse(&["run", "--bogus"]).unwrap_err();
        assert!(err.to_string().contains("--bogus"));
        let err = parse(&["run", "--design", "zzz"]).unwrap_err();
        assert!(err.to_string().contains("--design"));
        let err = parse(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["run", "--bench"]).is_err());
        assert!(parse(&["run", "--instructions", "many"]).is_err());
    }

    #[test]
    fn recover_shares_run_grammar() {
        let Command::Recover(args) = parse(&[
            "recover",
            "--bench",
            "gcc",
            "--trace-out",
            "t.jsonl",
            "--profile-out",
            "p.json",
            "--epoch-report",
        ])
        .unwrap() else {
            panic!("expected recover");
        };
        assert_eq!(args.bench, "gcc");
        assert_eq!(args.trace_out.as_deref(), Some("t.jsonl"));
        assert_eq!(args.profile_out.as_deref(), Some("p.json"));
        assert!(args.epoch_report);
    }

    #[test]
    fn run_accepts_profile_out() {
        let Command::Run(args) = parse(&["run", "--profile-out", "profile.json"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.profile_out.as_deref(), Some("profile.json"));
    }

    #[test]
    fn report_parses_compare_and_tolerance() {
        let Command::Report(args) = parse(&[
            "report",
            "--compare",
            "a.json",
            "b.json",
            "--tolerance",
            "2.5",
        ])
        .unwrap() else {
            panic!("expected report");
        };
        assert_eq!(
            args.compare,
            Some(("a.json".to_owned(), "b.json".to_owned()))
        );
        assert_eq!(args.metrics, None);
        assert!((args.tolerance - 2.5).abs() < 1e-12);

        let Command::Report(args) = parse(&["report", "--compare", "a", "b"]).unwrap() else {
            panic!("expected report");
        };
        assert!((args.tolerance - 5.0).abs() < 1e-12, "default tolerance");
    }

    #[test]
    fn report_accepts_metrics_alone_or_with_compare() {
        let Command::Report(args) = parse(&["report", "--metrics", "m.csv"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(args.metrics.as_deref(), Some("m.csv"));
        assert_eq!(args.compare, None);

        let Command::Report(args) =
            parse(&["report", "--compare", "a", "b", "--metrics", "m.jsonl"]).unwrap()
        else {
            panic!("expected report");
        };
        assert!(args.compare.is_some());
        assert_eq!(args.metrics.as_deref(), Some("m.jsonl"));
    }

    #[test]
    fn run_parses_wear_out() {
        let Command::Run(args) = parse(&["run", "--wear-out", "wear.json"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.wear_out.as_deref(), Some("wear.json"));
        assert_eq!(RunArgs::default().wear_out, None, "opt-in");
        let Command::Recover(args) = parse(&["recover", "--wear-out", "w.json"]).unwrap() else {
            panic!("expected recover");
        };
        assert_eq!(args.wear_out.as_deref(), Some("w.json"));
    }

    #[test]
    fn report_accepts_wear_alone() {
        let Command::Report(args) = parse(&["report", "--wear", "wear.json"]).unwrap() else {
            panic!("expected report");
        };
        assert_eq!(args.wear.as_deref(), Some("wear.json"));
        assert_eq!(args.compare, None);
        assert_eq!(args.metrics, None);
    }

    #[test]
    fn report_rejects_bad_grammar() {
        assert!(parse(&["report"]).is_err(), "needs an input");
        assert!(parse(&["report", "--compare", "only-one"]).is_err());
        assert!(parse(&["report", "--compare", "a", "b", "--tolerance", "-1"]).is_err());
        assert!(parse(&["report", "--compare", "a", "b", "--bogus"]).is_err());
    }

    #[test]
    fn run_parses_observability_flags() {
        let Command::Run(args) = parse(&[
            "run",
            "--metrics-out",
            "m.csv",
            "--metrics-interval",
            "250",
            "--chrome-trace",
            "t.json",
            "--audit",
            "strict",
        ])
        .unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.metrics_out.as_deref(), Some("m.csv"));
        assert_eq!(args.metrics_interval, 250);
        assert_eq!(args.chrome_trace.as_deref(), Some("t.json"));
        assert_eq!(args.audit, Some(AuditMode::Strict));
    }

    #[test]
    fn zero_metrics_interval_is_a_typed_error() {
        let err = parse(&["run", "--metrics-interval", "0"]).unwrap_err();
        assert!(err.to_string().contains("--metrics-interval"));
        assert!(err.to_string().contains("positive"));
    }

    #[test]
    fn forensics_shares_run_grammar_plus_kill() {
        let Command::Forensics(args) = parse(&[
            "forensics",
            "--backend",
            "file:/tmp/f",
            "--kill",
            "drain-stage",
            "--forensics-out",
            "report.json",
            "--strict",
        ])
        .unwrap() else {
            panic!("expected forensics");
        };
        assert_eq!(args.backend, BackendChoice::File("/tmp/f".to_owned()));
        assert_eq!(args.kill.as_deref(), Some("drain-stage"));
        assert_eq!(args.forensics_out.as_deref(), Some("report.json"));
        assert!(args.strict);
        assert_eq!(RunArgs::default().kill, None);
        assert!(!RunArgs::default().flight);
    }

    #[test]
    fn flight_parses_everywhere_but_kill_is_forensics_only() {
        let Command::Run(args) = parse(&["run", "--flight"]).unwrap() else {
            panic!("expected run");
        };
        assert!(args.flight);
        let Command::Recover(args) =
            parse(&["recover", "--forensics-out", "r.json", "--strict"]).unwrap()
        else {
            panic!("expected recover");
        };
        assert_eq!(args.forensics_out.as_deref(), Some("r.json"));
        assert!(args.strict);

        let err = parse(&["run", "--kill", "drain-stage"]).unwrap_err();
        assert!(err.to_string().contains("--kill"));
        let err = parse(&["recover", "--kill", "3"]).unwrap_err();
        assert!(err.to_string().contains("--kill"));
        let err = parse(&["run", "--forensics-out", "r.json"]).unwrap_err();
        assert!(err.to_string().contains("--forensics-out"));
        let err = parse(&["run", "--strict"]).unwrap_err();
        assert!(err.to_string().contains("--strict"));
    }

    #[test]
    fn report_parses_strict_drops() {
        let Command::Report(args) =
            parse(&["report", "--metrics", "m.csv", "--strict-drops"]).unwrap()
        else {
            panic!("expected report");
        };
        assert!(args.strict_drops);
        let Command::Report(args) = parse(&["report", "--metrics", "m.csv"]).unwrap() else {
            panic!("expected report");
        };
        assert!(!args.strict_drops, "opt-in");
    }

    #[test]
    fn bogus_audit_mode_is_rejected() {
        let err = parse(&["run", "--audit", "paranoid"]).unwrap_err();
        assert!(err.to_string().contains("--audit"));
        assert!(err.to_string().contains("paranoid"));
        let Command::Run(args) = parse(&["run", "--audit", "record"]).unwrap() else {
            panic!("expected run");
        };
        assert_eq!(args.audit, Some(AuditMode::Record));
    }
}
