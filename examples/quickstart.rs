//! Quickstart: run one SPEC-like workload on cc-NVM, print the
//! paper's headline metrics, then crash and recover.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ccnvm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's hardware configuration (§5): 16 GB PCM, 32 KB L1,
    // 256 KB L2, 128 KB meta cache, N = 16, M = 64.
    let config = SimConfig::paper(DesignKind::CcNvm);
    let mut sim = Simulator::new(config)?;

    // A synthetic stand-in for SPEC2006 `gcc` (see ccnvm-trace).
    let profile = profiles::by_name("gcc").expect("known benchmark");
    println!("running {} on {} …", profile.name, DesignKind::CcNvm);
    let stats = sim.run(TraceGenerator::new(profile, 42), 2_000_000)?;

    println!("\n=== run statistics ===");
    println!("{stats}");
    println!(
        "\nepochs: {} (avg {:.0} write-backs/epoch)",
        stats.drains,
        stats.write_backs as f64 / stats.drains.max(1) as f64
    );

    // Pull the plug mid-epoch and recover.
    println!("\n=== crash & recovery ===");
    let image = sim.memory().crash_image();
    let report = recover(&image);
    println!(
        "recovered {} counter lines ({} data lines) with {} retries (N_wb = {})",
        report.recovered_counter_lines,
        report.recovered_data_lines,
        report.total_retries,
        report.nwb
    );
    println!(
        "stored tree matches TCB root: {:?}; attacks located: {}",
        report.stored_root_match,
        report.located.len()
    );
    assert!(report.is_clean(), "an attack-free crash must recover clean");
    println!("recovery clean — memory contents fully restored");
    Ok(())
}
