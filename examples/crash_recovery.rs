//! Crash recovery walkthrough (§4.2 + §4.4).
//!
//! Runs a workload on cc-NVM, pulls the plug at three interesting
//! points — right after a committed drain, mid-epoch, and in the
//! middle of a drain (before the `end` signal) — and shows that
//! recovery reconstructs the exact pre-crash state every time.
//!
//! ```text
//! cargo run --release --example crash_recovery
//! ```

use ccnvm::prelude::*;
use ccnvm_mem::LineAddr;

fn check(label: &str, mem: &SecureMemory) -> Result<(), Box<dyn std::error::Error>> {
    let image = mem.crash_image();
    let report = recover(&image);
    let truth = mem.ground_truth();
    println!("--- crash {label} ---");
    println!(
        "  N_wb = {}, retries = {} (max {}/line), counters patched = {}",
        report.nwb, report.total_retries, report.max_line_retries, report.recovered_counter_lines
    );
    println!(
        "  stored tree vs TCB roots: {:?}; rebuilt tree vs TCB roots: {:?}",
        report.stored_root_match, report.rebuilt_root_match
    );
    assert!(report.is_clean(), "attack-free crash must recover clean");
    assert_eq!(
        report.rebuilt_root, truth.current_root,
        "recovered tree must equal the logical pre-crash tree"
    );
    for (line, content) in &truth.counter_lines {
        assert_eq!(
            &report.recovered_nvm.read(LineAddr(*line)),
            content,
            "counter line {line:#x} must be restored exactly"
        );
    }
    println!("  ✔ every counter restored bit-exactly; root matches ground truth\n");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mem = SecureMemory::new(SimConfig::paper(DesignKind::CcNvm))?;

    // Fill a few pages and commit an epoch.
    for i in 0..32u64 {
        mem.write_back(LineAddr((i % 6) * 64), i * 50_000)?;
    }
    mem.drain(5_000_000, DrainTrigger::External);
    check("right after a committed drain (clean epoch boundary)", &mem)?;

    // Mid-epoch: several write-backs whose metadata lives only on chip.
    for i in 0..10u64 {
        mem.write_back(LineAddr((i % 3) * 64), 6_000_000 + i * 50_000)?;
    }
    check(
        "mid-epoch (stalled counters recovered via data HMACs)",
        &mem,
    )?;

    // Mid-drain: the drainer has staged the epoch into the WPQ but the
    // `end` signal never arrives — ADR drops the residual lines and the
    // NVM tree stays consistently *old*.
    mem.stage_drain(8_000_000);
    assert!(mem.has_staged_drain());
    mem.discard_staged(); // power failed before the end signal
    check(
        "mid-drain, before the end signal (staged lines dropped)",
        &mem,
    )?;

    println!("all three crash points recovered cleanly");
    Ok(())
}
