//! A tiny persistent key-value store running on secure NVM.
//!
//! The paper's motivation is in-place persistent data structures on
//! encrypted, authenticated memory. This example builds one: a
//! fixed-capacity open-addressing hash table laid out in the simulated
//! NVM's data region, every access flowing through the cc-NVM secure
//! memory path (encryption, HMACs, epoch draining). It then crashes
//! the machine and re-opens the store from the recovered image.
//!
//! The store keeps its *own* expected contents in host memory purely
//! to verify the recovered image — the secure memory sees only
//! line-level reads and write-backs, exactly like a CPU cache would
//! emit.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use ccnvm::counter::CounterLine;
use ccnvm::prelude::*;
use ccnvm::secmem::pattern;
use ccnvm_mem::LineAddr;
use std::collections::HashMap;

/// A line-granular KV store: each slot is one 64-byte line holding one
/// logical record; `slot = hash(key) % capacity` with linear probing
/// is evaluated host-side, and every touched slot becomes a secure
/// write-back.
struct SecureKv {
    mem: SecureMemory,
    capacity: u64,
    /// Which slot each key landed in.
    directory: HashMap<u64, u64>,
    /// How many times each slot has been written (drives the expected
    /// plaintext version).
    slot_versions: HashMap<u64, u64>,
    now: u64,
}

impl SecureKv {
    fn open(capacity: u64) -> Result<Self, Box<dyn std::error::Error>> {
        Ok(Self {
            mem: SecureMemory::new(SimConfig::paper(DesignKind::CcNvm))?,
            capacity,
            directory: HashMap::new(),
            slot_versions: HashMap::new(),
            now: 0,
        })
    }

    fn slot_of(&self, key: u64) -> u64 {
        let mut slot = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) % self.capacity;
        while self
            .directory
            .values()
            .any(|&s| s == slot && self.directory.get(&key) != Some(&slot))
        {
            slot = (slot + 1) % self.capacity;
        }
        slot
    }

    fn put(&mut self, key: u64) -> Result<(), IntegrityError> {
        let slot = self.directory.get(&key).copied().unwrap_or_else(|| {
            let s = self.slot_of(key);
            self.directory.insert(key, s);
            s
        });
        self.now += 50_000;
        self.mem.write_back(LineAddr(slot), self.now)?;
        *self.slot_versions.entry(slot).or_insert(0) += 1;
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<bool, IntegrityError> {
        let Some(&slot) = self.directory.get(&key) else {
            return Ok(false);
        };
        self.now += 50_000;
        self.mem.read_data(LineAddr(slot), self.now)?;
        Ok(true)
    }

    fn sync(&mut self) {
        self.now += 100_000;
        self.mem.drain(self.now, DrainTrigger::External);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut kv = SecureKv::open(4096)?;

    // Phase 1: populate and sync (committed epoch).
    for key in 0..200u64 {
        kv.put(key)?;
    }
    kv.sync();

    // Phase 2: more updates that stay in the open epoch.
    for key in 0..40u64 {
        kv.put(key)?; // overwrite: bumps versions past the drained state
    }
    for key in 150..180u64 {
        kv.get(key)?;
    }
    let stats = kv.mem.stats();
    println!(
        "store ran: {} write-backs, {} epochs, {} NVM writes",
        stats.write_backs,
        stats.drains,
        stats.total_writes()
    );

    // Phase 3: crash and recover.
    let image = kv.mem.crash_image();
    let report = recover(&image);
    assert!(report.is_clean(), "no attacks: recovery must be clean");
    println!(
        "crashed mid-epoch: {} counters recovered with {} retries (N_wb {})",
        report.recovered_counter_lines, report.total_retries, report.nwb
    );

    // Phase 4: verify every record is intact in the recovered image —
    // decrypt each slot with its recovered counter and compare with
    // the expected content.
    let engine = ccnvm::engine::CryptoEngine::new(&image.tcb.keys);
    let layout = ccnvm::layout::SecureLayout::new(image.capacity_bytes);
    let mut verified = 0;
    for (&key, &slot) in &kv.directory {
        let line = LineAddr(slot);
        let ct = report.recovered_nvm.read(line);
        let ctr = CounterLine::decode(&report.recovered_nvm.read(layout.counter_line_of(line)));
        let (major, minor) = ctr.seed(line.page_offset());
        let plain = engine.decrypt_line(&ct, line, major, minor);
        let version = kv.slot_versions[&slot];
        assert_eq!(
            plain,
            pattern(line, version),
            "key {key} (slot {slot}) corrupted across the crash"
        );
        verified += 1;
    }
    println!(
        "re-opened store: {verified}/{} records verified bit-exact",
        kv.directory.len()
    );
    Ok(())
}
