//! Attack detection and locating (§2.1 threat model + §4.4).
//!
//! Demonstrates all three integrity-attack classes against cc-NVM:
//!
//! * at **runtime**, tampering with live NVM is caught on the next
//!   fetch (data HMAC or tree-path mismatch), and
//! * **across a crash**, spoofing/splicing/replay on the durable image
//!   are detected during recovery — and located to the exact line,
//!   which is the paper's headline capability.
//!
//! ```text
//! cargo run --release --example attack_locating
//! ```

use ccnvm::attack;
use ccnvm::prelude::*;
use ccnvm_mem::LineAddr;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------- runtime detection ----------
    let mut mem = SecureMemory::new(SimConfig::paper(DesignKind::CcNvm))?;
    for i in 0..8u64 {
        mem.write_back(LineAddr(i * 64), i * 60_000)?;
    }
    mem.drain(1_000_000, DrainTrigger::External);

    // Spoof a data line in NVM behind the processor's back.
    let victim = LineAddr(3 * 64);
    let mut ct = mem.crash_image().nvm.read(victim);
    ct[10] ^= 0xff;
    mem.tamper_durable(victim, ct);
    let err = mem
        .read_data(victim, 2_000_000)
        .expect_err("tampered line must not decrypt");
    println!("runtime spoof  -> {err}");
    assert_eq!(err, IntegrityError::DataHmacMismatch { line: victim });

    // ---------- post-crash locating ----------
    let mut mem = SecureMemory::new(SimConfig::paper(DesignKind::CcNvm))?;
    for i in 0..8u64 {
        mem.write_back(LineAddr(i * 64), i * 60_000)?;
    }
    mem.drain(1_000_000, DrainTrigger::External);
    let epoch1 = mem.crash_image();
    for i in 0..8u64 {
        mem.write_back(LineAddr(i * 64), 2_000_000 + i * 60_000)?;
    }
    mem.drain(3_000_000, DrainTrigger::External);

    // Spoofing: flip bits in one line of the crash image.
    let mut img = mem.crash_image();
    attack::spoof_data(&mut img, LineAddr(128));
    let report = recover(&img);
    println!("crash spoof    -> located: {:?}", report.located);
    assert_eq!(
        report.located,
        vec![LocatedAttack::DataTampered {
            line: LineAddr(128)
        }]
    );

    // Splicing: swap two lines (with their HMACs) — both ends located.
    let mut img = mem.crash_image();
    attack::splice_data(&mut img, LineAddr(0), LineAddr(448));
    let report = recover(&img);
    println!("crash splice   -> located: {:?}", report.located);
    assert_eq!(report.located.len(), 2);

    // Counter replay: restore last epoch's counter line; the stored
    // tree no longer matches it -> located by the consistency scan.
    let mut img = mem.crash_image();
    let ctr = mem.layout().counter_line_of(LineAddr(0));
    attack::replay_counter(&mut img, &epoch1, ctr);
    let report = recover(&img);
    println!("counter replay -> located: {:?}", report.located);
    assert!(report
        .located
        .iter()
        .any(|a| matches!(a, LocatedAttack::MetadataTampered { child_level: 0, .. })));

    // Figure-4 replay: crash mid-epoch, replay data+HMAC to the old
    // version. Locally consistent — only N_wb ≠ N_retry exposes it.
    let mut mem = SecureMemory::new(SimConfig::paper(DesignKind::CcNvm))?;
    mem.write_back(LineAddr(0), 0)?;
    mem.drain(1_000_000, DrainTrigger::External);
    let old = mem.crash_image();
    mem.write_back(LineAddr(0), 2_000_000)?; // mid-epoch write
    let mut img = mem.crash_image();
    attack::replay_data(&mut img, &old, LineAddr(0));
    let report = recover(&img);
    println!(
        "fig-4 replay   -> locally consistent ({} located), N_wb = {} vs N_retry = {} => detected: {}",
        report.located.len(),
        report.nwb,
        report.total_retries,
        report.potential_replay
    );
    assert!(report.located.is_empty());
    assert!(report.potential_replay);
    assert!(!report.is_clean());

    println!("\nall attack classes detected; all locatable ones located");
    Ok(())
}
