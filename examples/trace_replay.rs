//! Trace capture & replay: write a workload trace to the plain-text
//! interchange format, replay it through two different designs, and
//! confirm replays are bit-identical.
//!
//! The same mechanism replays traces captured from real applications
//! (one `<gap> <R|W> <hex addr>` record per line) — see
//! `ccnvm_trace::text` for the format.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use ccnvm::prelude::*;
use ccnvm_trace::{text, TraceGenerator, TraceOp};

fn replay(design: DesignKind, ops: &[TraceOp]) -> Result<RunStats, Box<dyn std::error::Error>> {
    let mut sim = Simulator::new(SimConfig::paper(design))?;
    sim.run(ops.iter().copied(), u64::MAX)?;
    Ok(sim.stats())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Capture: 200k operations of the mixed profile into a file.
    let ops: Vec<TraceOp> = TraceGenerator::new(profiles::mixed(), 42)
        .take(200_000)
        .collect();
    let path = std::env::temp_dir().join("ccnvm_example_trace.txt");
    let mut file = std::fs::File::create(&path)?;
    text::write_trace(&mut file, &ops)?;
    drop(file);
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "captured {} ops to {} ({} KiB)",
        ops.len(),
        path.display(),
        bytes / 1024
    );

    // Replay from disk.
    let parsed = text::read_trace(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(parsed, ops, "the text format round-trips losslessly");

    for design in [DesignKind::StrictConsistency, DesignKind::CcNvm] {
        let a = replay(design, &parsed)?;
        let b = replay(design, &parsed)?;
        assert_eq!(a, b, "replays must be bit-identical");
        println!(
            "{design:<14} IPC {:.4}, NVM writes {:>7}, epochs {}",
            a.ipc(),
            a.total_writes(),
            a.drains
        );
    }

    std::fs::remove_file(&path)?;
    println!("replayed the same trace through both designs deterministically");
    Ok(())
}
