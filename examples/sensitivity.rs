//! Mini sensitivity sweep over the epoch triggers (a fast version of
//! Figure 6 — the full one is `cargo run -p ccnvm-bench --bin fig6`).
//!
//! ```text
//! cargo run --release --example sensitivity
//! ```

use ccnvm::prelude::*;

const INSTRUCTIONS: u64 = 150_000;

fn run(n: u32, m: usize) -> Result<RunStats, String> {
    let mut config = SimConfig::paper(DesignKind::CcNvm);
    config.update_limit = n;
    config.dirty_queue_entries = m;
    ccnvm::sim::run_profile(config, &profiles::mixed(), INSTRUCTIONS, 42)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("cc-NVM epoch-trigger sensitivity ({INSTRUCTIONS} instructions, mixed workload)\n");
    println!(
        "{:<12}{:>10}{:>14}{:>12}{:>14}",
        "config", "IPC", "NVM writes", "epochs", "wb/epoch"
    );
    for (n, m) in [(4, 64), (16, 64), (64, 64), (16, 32), (16, 48)] {
        let s = run(n, m)?;
        println!(
            "{:<12}{:>10.4}{:>14}{:>12}{:>14.1}",
            format!("N={n} M={m}"),
            s.ipc(),
            s.total_writes(),
            s.drains,
            s.write_backs as f64 / s.drains.max(1) as f64
        );
    }
    println!("\nlarger N and M stretch epochs: fewer drains, fewer metadata writes, higher IPC");
    Ok(())
}
