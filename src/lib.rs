//! Umbrella crate for the cc-NVM reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! surface lives in the member crates:
//!
//! * [`ccnvm`] — the cc-NVM secure-memory architecture (the paper's
//!   contribution) and the simulator that evaluates it.
//! * [`ccnvm_crypto`] — AES-128 / SHA-1 / HMAC primitives used by the
//!   trusted computing base.
//! * [`ccnvm_mem`] — cache and NVM device/controller timing models.
//! * [`ccnvm_trace`] — synthetic SPEC-like workload generation.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the system
//! inventory and experiment index.

pub use ccnvm;
pub use ccnvm_crypto;
pub use ccnvm_mem;
pub use ccnvm_trace;
